/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: raw
 * machine-cycle throughput in several regimes, histogram analysis
 * cost, and workload generation cost.
 */

#include <benchmark/benchmark.h>

#include "arch/assembler.hh"
#include "ucode/rom.hh"
#include "cpu/cpu.hh"
#include "upc/analyzer.hh"
#include "upc/monitor.hh"
#include "workload/codegen.hh"
#include "workload/experiments.hh"

namespace
{

using namespace vax;

/** Tight register-only loop: peak interpreter speed. */
void
BM_CycleThroughputRegisters(benchmark::State &state)
{
    Cpu780 cpu;
    cpu.mem().setMapEnable(false);
    Assembler a(0x1000);
    a.label("loop");
    for (int i = 0; i < 16; ++i)
        a.instr(op::ADDL2, {Operand::lit(1), Operand::reg(R1)});
    a.instr(op::BRW, {Operand::branch("loop")});
    cpu.mem().phys().load(a.base(), a.finish());
    cpu.reset(a.base());
    cpu.ebox().setGpr(SP, 0x8000);

    for (auto _ : state) {
        cpu.tick();
        benchmark::DoNotOptimize(cpu.cycles());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleThroughputRegisters);

/** Memory-heavy loop: cache/TB path cost. */
void
BM_CycleThroughputMemory(benchmark::State &state)
{
    Cpu780 cpu;
    cpu.mem().setMapEnable(false);
    Assembler a(0x1000);
    a.instr(op::MOVL, {Operand::imm(0x40000), Operand::reg(R2)});
    a.label("loop");
    for (int i = 0; i < 8; ++i) {
        a.instr(op::MOVL, {Operand::disp(4 * i, R2),
                           Operand::reg(R1)});
        a.instr(op::MOVL, {Operand::reg(R1),
                           Operand::disp(4 * i + 64, R2)});
    }
    a.instr(op::BRW, {Operand::branch("loop")});
    cpu.mem().phys().load(a.base(), a.finish());
    cpu.reset(a.base());
    cpu.ebox().setGpr(SP, 0x8000);

    for (auto _ : state) {
        cpu.tick();
        benchmark::DoNotOptimize(cpu.cycles());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleThroughputMemory);

/** Cycle cost with the UPC monitor attached (should be ~free). */
void
BM_CycleThroughputMonitored(benchmark::State &state)
{
    Cpu780 cpu;
    UpcMonitor mon;
    cpu.setCycleSink(&mon);
    cpu.mem().setMapEnable(false);
    Assembler a(0x1000);
    a.label("loop");
    for (int i = 0; i < 16; ++i)
        a.instr(op::ADDL2, {Operand::lit(1), Operand::reg(R1)});
    a.instr(op::BRW, {Operand::branch("loop")});
    cpu.mem().phys().load(a.base(), a.finish());
    cpu.reset(a.base());
    cpu.ebox().setGpr(SP, 0x8000);

    for (auto _ : state) {
        cpu.tick();
        benchmark::DoNotOptimize(cpu.cycles());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleThroughputMonitored);

/** Full ROM construction (per-CPU startup cost). */
void
BM_RomBuild(benchmark::State &state)
{
    for (auto _ : state) {
        ControlStore cs;
        buildMicrocodeRom(cs);
        benchmark::DoNotOptimize(cs.size());
    }
}
BENCHMARK(BM_RomBuild);

/** Workload program generation. */
void
BM_CodeGeneration(benchmark::State &state)
{
    WorkloadProfile prof = educationalProfile();
    uint64_t seed = 1;
    for (auto _ : state) {
        CodeGenerator gen(prof, seed++);
        UserProgram prog = gen.generate(0);
        benchmark::DoNotOptimize(prog.image.size());
    }
}
BENCHMARK(BM_CodeGeneration);

/** Histogram analysis over a populated histogram. */
void
BM_HistogramAnalysis(benchmark::State &state)
{
    static ExperimentResult result =
        runExperiment(timesharingLightProfile(), 200000);
    Cpu780 ref;
    for (auto _ : state) {
        HistogramAnalyzer an(ref.controlStore(), result.hist);
        benchmark::DoNotOptimize(an.cyclesPerInstruction());
    }
}
BENCHMARK(BM_HistogramAnalysis);

} // anonymous namespace

BENCHMARK_MAIN();
