/**
 * @file
 * Table 8 -- the paper's headline result: cycles per average VAX
 * instruction, classified by activity (rows) and cycle category
 * (columns).  Every machine cycle falls into exactly one cell.
 */

#include "bench/bench_util.hh"

using namespace vax;
using namespace vax::bench;

int
main(int argc, char **argv)
{
    BenchRun r = runBench(&argc, argv, "Table 8 -- Average VAX Instruction Timing "
                          "(cycles per instruction)");

    static const Row rows[] = {
        Row::Decode, Row::Spec1, Row::Spec26, Row::Bdisp,
        Row::ExecSimple, Row::ExecField, Row::ExecFloat,
        Row::ExecCallRet, Row::ExecSystem, Row::ExecCharacter,
        Row::ExecDecimal, Row::IntExcept, Row::MemMgmt, Row::Abort,
    };
    static const TimeCol cols[] = {
        TimeCol::Compute, TimeCol::Read, TimeCol::RStall,
        TimeCol::Write, TimeCol::WStall, TimeCol::IbStall,
    };

    TextTable t("Measured matrix (cycles per average instruction)");
    t.addRow({"", "Compute", "Read", "R-Stall", "Write", "W-Stall",
              "IB-Stall", "Total"});
    for (Row row : rows) {
        std::vector<std::string> line{rowName(row)};
        for (TimeCol col : cols)
            line.push_back(TextTable::num(r.an().cell(row, col), 3));
        line.push_back(TextTable::num(r.an().rowTotal(row), 3));
        t.addRow(line);
    }
    t.rule();
    {
        std::vector<std::string> line{"TOTAL"};
        for (TimeCol col : cols)
            line.push_back(TextTable::num(r.an().colTotal(col), 3));
        line.push_back(
            TextTable::num(r.an().cyclesPerInstruction(), 3));
        t.addRow(line);
    }
    std::printf("%s\n", t.str().c_str());

    TextTable p("Paper reference cells (Table 8) vs measured");
    p.addRow({"Cell", "Paper", "Measured"});
    p.addRow({"Decode compute", "1.000",
              TextTable::num(r.an().cell(Row::Decode,
                                         TimeCol::Compute), 3)});
    p.addRow({"Decode IB-stall", "0.613",
              TextTable::num(r.an().cell(Row::Decode,
                                         TimeCol::IbStall), 3)});
    p.addRow({"Float row total", "0.302",
              TextTable::num(r.an().rowTotal(Row::ExecFloat), 3)});
    p.addRow({"Call/Ret row total", "1.458",
              TextTable::num(r.an().rowTotal(Row::ExecCallRet), 3)});
    p.addRow({"Int/Except row total", "0.071",
              TextTable::num(r.an().rowTotal(Row::IntExcept), 3)});
    p.addRow({"TOTAL compute", "7.267",
              TextTable::num(r.an().colTotal(TimeCol::Compute), 3)});
    p.addRow({"TOTAL read", "0.783",
              TextTable::num(r.an().colTotal(TimeCol::Read), 3)});
    p.addRow({"TOTAL read stall", "0.964",
              TextTable::num(r.an().colTotal(TimeCol::RStall), 3)});
    p.addRow({"TOTAL write", "0.409",
              TextTable::num(r.an().colTotal(TimeCol::Write), 3)});
    p.addRow({"TOTAL write stall", "0.450",
              TextTable::num(r.an().colTotal(TimeCol::WStall), 3)});
    p.addRow({"TOTAL IB stall", "0.720",
              TextTable::num(r.an().colTotal(TimeCol::IbStall), 3)});
    p.addRow({"TOTAL cycles/instr", "10.593",
              TextTable::num(r.an().cyclesPerInstruction(), 3)});
    std::printf("%s\n", p.str().c_str());

    std::printf(
        "Paper observations that should hold here:\n"
        "  - the average instruction takes on the order of 10 "
        "cycles;\n"
        "  - nearly half the time goes to decode + specifier "
        "processing (incl. their stalls);\n"
        "  - CALL/RET contributes the most of any opcode group "
        "despite its low frequency;\n"
        "  - SIMPLE execution is ~10%% of time despite ~84%% of "
        "instructions.\n");
    double front = r.an().rowTotal(Row::Decode) +
        r.an().rowTotal(Row::Spec1) + r.an().rowTotal(Row::Spec26) +
        r.an().rowTotal(Row::Bdisp);
    std::printf("Measured: decode+specifier share = %.0f%%; "
                "SIMPLE execute share = %.0f%%; CALL/RET row = "
                "largest exec row? %s\n",
                100.0 * front / r.an().cyclesPerInstruction(),
                100.0 * r.an().rowTotal(Row::ExecSimple) /
                    r.an().cyclesPerInstruction(),
                r.an().rowTotal(Row::ExecCallRet) >
                        r.an().rowTotal(Row::ExecField)
                    ? "yes" : "no");
    return 0;
}
