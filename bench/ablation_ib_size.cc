/**
 * @file
 * Ablation: instruction-buffer size.
 *
 * The 8-byte IB is an implementation choice (Section 4.1 stresses that
 * IB referencing behaviour is implementation-specific).  Sweeping its
 * size shows how IB stalls and IB cache traffic respond: a small
 * buffer starves decode; a large one mostly buys fewer repeated
 * references to the same longword.
 */

#include <cstdio>

#include "cpu/cpu.hh"
#include "driver/sim_pool.hh"
#include "support/table.hh"
#include "upc/analyzer.hh"
#include "workload/experiments.hh"

using namespace vax;

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobsFlag(&argc, argv, envJobs());
    uint64_t cycles = benchCycles(1'000'000);
    WorkloadProfile prof = timesharingHeavyProfile();
    std::printf("instruction-buffer size ablation under '%s' "
                "(%llu cycles each)\n\n",
                prof.name.c_str(), (unsigned long long)cycles);

    static const unsigned sizes[] = {4u, 6u, 8u, 12u, 16u};
    std::vector<SimJob> sweep;
    for (unsigned bytes : sizes) {
        SimConfig sim;
        sim.ibBytes = bytes;
        sim.seed = prof.seed;
        sweep.push_back(SimJob::forProfile(prof, cycles, sim));
    }
    std::vector<ExperimentResult> results = SimPool(jobs).run(sweep);

    TextTable t("Effect of the IB size");
    t.addRow({"IB bytes", "CPI", "IB-Stall/instr", "Decode IB-Stall",
              "IB refs/instr"});
    Cpu780 ref;
    for (size_t i = 0; i < sweep.size(); ++i) {
        unsigned bytes = sizes[i];
        const ExperimentResult &r = results[i];
        HistogramAnalyzer an(ref.controlStore(), r.hist);
        double refs = static_cast<double>(r.hw.ibLongwordFetches) /
            r.hw.counters.instructions;
        std::string label = std::to_string(bytes) +
            (bytes == 8 ? " (11/780)" : "");
        t.addRow({label, TextTable::num(an.cyclesPerInstruction(), 2),
                  TextTable::num(an.colTotal(TimeCol::IbStall), 3),
                  TextTable::num(an.cell(Row::Decode,
                                         TimeCol::IbStall), 3),
                  TextTable::num(refs, 2)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("Expected shape: IB stall falls as the buffer grows "
                "(with diminishing returns past 8),\nand references "
                "per instruction fall as fewer refetches of the same "
                "longword occur.\n");
    return 0;
}
