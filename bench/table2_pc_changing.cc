/**
 * @file
 * Table 2: PC-changing instructions -- frequency, proportion that
 * actually branch, and actual branches as a percent of all
 * instructions.  Taken/not-taken are distinct microcode paths, so the
 * histogram separates them directly.
 */

#include "bench/bench_util.hh"

using namespace vax;
using namespace vax::bench;

int
main(int argc, char **argv)
{
    BenchRun r = runBench(&argc, argv, "Table 2 -- PC-Changing Instructions");

    struct RowDef
    {
        PcChangeKind kind;
        double paper_freq;   ///< percent of all instructions
        double paper_taken;  ///< percent that branch
    };
    static const RowDef rows[] = {
        {PcChangeKind::SimpleCond, 19.3, 56.0},
        {PcChangeKind::LoopBranch, 4.1, 91.0},
        {PcChangeKind::LowBitTest, 2.0, 41.0},
        {PcChangeKind::SubrCallRet, 4.5, 100.0},
        {PcChangeKind::Uncond, 0.3, 100.0},
        {PcChangeKind::CaseBranch, 0.9, 100.0},
        {PcChangeKind::BitBranch, 4.3, 44.0},
        {PcChangeKind::ProcCallRet, 2.4, 100.0},
        {PcChangeKind::SystemBr, 0.4, 100.0},
    };

    TextTable t("PC-changing instructions "
                "(columns: paper / measured)");
    t.addRow({"Branch type", "Freq % of all", "% that branch",
              "Actual branch % of all"});
    double tot_freq_p = 0, tot_freq_m = 0;
    double tot_act_p = 0, tot_act_m = 0;
    for (const auto &row : rows) {
        double freq = 100.0 * r.an().pcChangeFraction(row.kind);
        double taken = 100.0 * r.an().takenFraction(row.kind);
        double act = freq * taken / 100.0;
        double act_p = row.paper_freq * row.paper_taken / 100.0;
        tot_freq_p += row.paper_freq;
        tot_freq_m += freq;
        tot_act_p += act_p;
        tot_act_m += act;
        t.addRow({pcChangeKindName(row.kind),
                  pvm(row.paper_freq, freq, 1),
                  pvm(row.paper_taken, taken, 0),
                  pvm(act_p, act, 1)});
    }
    t.rule();
    double taken_tot_p = 100.0 * tot_act_p / tot_freq_p;
    double taken_tot_m =
        tot_freq_m > 0 ? 100.0 * tot_act_m / tot_freq_m : 0.0;
    t.addRow({"TOTAL", pvm(38.5, tot_freq_m, 1),
              pvm(taken_tot_p, taken_tot_m, 0),
              pvm(25.7, tot_act_m, 1)});
    std::printf("%s\n", t.str().c_str());
    std::printf("Paper: \"about 9 out of 10 loop branches actually "
                "branched\" -> mean loop iterations ~10.\n");
    double lt = r.an().takenFraction(PcChangeKind::LoopBranch);
    if (lt < 1.0 && lt > 0.0) {
        std::printf("Measured: loop branches taken %.0f%% -> mean "
                    "iterations ~%.1f.\n",
                    100.0 * lt, 1.0 / (1.0 - lt));
    }
    return 0;
}
