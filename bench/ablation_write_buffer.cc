/**
 * @file
 * Ablation: write-buffer drain time.
 *
 * The paper's write-stall story rests on the one-longword buffer with
 * its ~6-cycle drain: CALL/RET stalls heavily while pushing state,
 * while the CHARACTER microcode avoids stalls by spacing its writes
 * six cycles apart.  Sweeping the drain time shows both effects: the
 * write-stall column scales with drain, and CHARACTER only stays
 * stall-free while the drain fits its loop period.
 */

#include <cstdio>

#include "cpu/cpu.hh"
#include "driver/sim_pool.hh"
#include "support/table.hh"
#include "upc/analyzer.hh"
#include "workload/experiments.hh"

using namespace vax;

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobsFlag(&argc, argv, envJobs());
    uint64_t cycles = benchCycles(1'000'000);
    WorkloadProfile prof = educationalProfile();
    std::printf("write-buffer drain ablation under '%s' "
                "(%llu cycles each)\n\n",
                prof.name.c_str(), (unsigned long long)cycles);

    static const uint32_t drains[] = {2u, 4u, 6u, 8u, 12u};
    std::vector<SimJob> sweep;
    for (uint32_t drain : drains) {
        SimConfig sim;
        sim.mem.writeDrainCycles = drain;
        sim.seed = prof.seed;
        sweep.push_back(SimJob::forProfile(prof, cycles, sim));
    }
    std::vector<ExperimentResult> results = SimPool(jobs).run(sweep);

    TextTable t("Effect of the write-buffer drain time");
    t.addRow({"Drain", "CPI", "W-Stall/instr", "CallRet W-Stall",
              "Character W-Stall"});
    Cpu780 ref;
    for (size_t i = 0; i < sweep.size(); ++i) {
        uint32_t drain = drains[i];
        HistogramAnalyzer an(ref.controlStore(), results[i].hist);
        std::string label = std::to_string(drain) +
            (drain == 6 ? " (11/780)" : "");
        t.addRow({label, TextTable::num(an.cyclesPerInstruction(), 2),
                  TextTable::num(an.colTotal(TimeCol::WStall), 3),
                  TextTable::num(an.cell(Row::ExecCallRet,
                                         TimeCol::WStall), 3),
                  TextTable::num(an.cell(Row::ExecCharacter,
                                         TimeCol::WStall), 4)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf(
        "Expected shape: write stall grows with the drain time and is "
        "dominated by CALL/RET;\nthe CHARACTER row stays near zero "
        "through drain <= 6 (its loop writes every 6th cycle)\nand "
        "only picks up stall beyond that -- the optimization the "
        "paper describes.\n");
    return 0;
}
