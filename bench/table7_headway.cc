/**
 * @file
 * Table 7: interrupt and context-switch headway (average instructions
 * between events), from event-marked microcode entries.
 */

#include "bench/bench_util.hh"

using namespace vax;
using namespace vax::bench;

int
main(int argc, char **argv)
{
    BenchRun r = runBench(&argc, argv, "Table 7 -- Interrupt / Context-Switch "
                          "Headway");

    TextTable t("Average instruction headway between events");
    t.addRow({"Event", "Paper", "Measured"});
    t.addRow({"Software interrupt requests", "2539",
              TextTable::num(r.an().headwaySwIntRequests(), 0)});
    t.addRow({"Hardware and software interrupts", "637",
              TextTable::num(r.an().headwayInterrupts(), 0)});
    t.addRow({"Context switches", "6418",
              TextTable::num(r.an().headwayContextSwitches(), 0)});
    std::printf("%s\n", t.str().c_str());

    std::printf("Per-workload interrupt headway:\n");
    Cpu780 ref;
    for (const auto &part : r.composite.parts) {
        HistogramAnalyzer an(ref.controlStore(), part.hist);
        std::printf("  %-18s interrupts 1/%.0f, context switches "
                    "1/%.0f\n",
                    part.name.c_str(), an.headwayInterrupts(),
                    an.headwayContextSwitches());
    }
    return 0;
}
