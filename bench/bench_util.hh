/**
 * @file
 * Shared plumbing for the table benches: run the composite of the five
 * workloads once, analyze, and print measured values beside the
 * paper's published numbers.
 *
 * Simulated length per experiment defaults to 2,000,000 cycles
 * (0.4 simulated seconds); override with the UPC780_CYCLES environment
 * variable for longer, more stable runs.
 */

#ifndef UPC780_BENCH_BENCH_UTIL_HH
#define UPC780_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "cpu/cpu.hh"
#include "driver/checkpoint.hh"
#include "driver/sim_pool.hh"
#include "support/faultinject.hh"
#include "support/interrupt.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/trace.hh"
#include "upc/analyzer.hh"
#include "upc/selfcheck.hh"
#include "workload/experiments.hh"

namespace vax::bench
{

/** The shared bench command-line surface, for --help and bad args. */
inline void
printBenchUsage(const char *prog, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s [options]\n"
        "  --jobs N           worker threads, 0 = one per core"
        " (also UPC780_JOBS)\n"
        "  --trace LIST       trace channels, e.g. cache,fault"
        " (also UPC780_TRACE)\n"
        "  --stats-json PATH  write the composite stats registry as"
        " JSON\n"
        "  --faults SPEC      deterministic fault injection, e.g.\n"
        "                     parity=1e-4,tb=5e-5,seed=7"
        " (also UPC780_FAULTS)\n"
        "  --strict           fail fast on the first job error"
        " (also UPC780_STRICT)\n"
        "  --selfcheck        verify accounting identities after the"
        " run\n"
        "  --checkpoint-dir D rolling per-job checkpoints in D;"
        " retries resume\n"
        "                     from the last checkpoint, Ctrl-C drains"
        " to a final one\n"
        "  --checkpoint-interval N\n"
        "                     cycles between checkpoints (default"
        " 250000)\n"
        "  --resume           continue an interrupted run from"
        " --checkpoint-dir\n"
        "  --watchdog-cycles N\n"
        "                     forward-progress watchdog window per"
        " job\n"
        "  --job-timeout S    wall-clock budget per job in seconds\n"
        "  --help             this message\n"
        "Cycles per experiment come from UPC780_CYCLES"
        " (default 2000000).\n",
        prog);
}

/**
 * After every known flag has been stripped from argv, anything left
 * is a typo; print usage and exit non-zero rather than silently
 * running a different experiment than the user asked for.
 *
 * @param positional How many positional operands are legitimate.
 */
inline void
rejectUnknownArgs(int argc, char **argv, int positional = 0)
{
    if (argc <= 1 + positional)
        return;
    std::fprintf(stderr, "%s: unrecognized argument '%s'\n\n", argv[0],
                 argv[1 + positional]);
    printBenchUsage(argv[0], stderr);
    std::exit(2);
}

/** Everything a table bench needs. */
struct BenchRun
{
    CompositeResult composite;
    std::unique_ptr<Cpu780> ref; ///< for the control-store annotations
    std::unique_ptr<HistogramAnalyzer> analyzer;

    const HistogramAnalyzer &an() const { return *analyzer; }
};

/**
 * Run the composite for a table bench, honoring the shared
 * command-line surface (flags are stripped from argv):
 *
 *   --jobs N            worker threads (also UPC780_JOBS)
 *   --trace LIST        trace channels (also UPC780_TRACE)
 *   --stats-json PATH   write the composite's stats registry as JSON
 *   --faults SPEC       deterministic fault injection (UPC780_FAULTS)
 *   --strict            fail fast on the first job error
 *   --selfcheck         run the accounting self-check after the run
 *
 * Unrecognized arguments print the usage and exit(2).  A failed
 * --stats-json write or a self-check violation is fatal, so scripted
 * callers see a non-zero exit instead of a silently missing file.
 */
inline BenchRun
runBench(int *argc, char **argv, const char *title)
{
    if (parseBoolFlag(argc, argv, "help")) {
        printBenchUsage(argv[0], stdout);
        std::exit(0);
    }
    trace::parseTraceFlag(argc, argv);
    unsigned jobs = parseJobsFlag(argc, argv, envJobs());
    std::string stats_path = stats::parseStatsJsonFlag(argc, argv);
    FaultConfig faults = FaultConfig::parseFlag(argc, argv);
    CheckpointConfig ckpt = CheckpointConfig::parseFlags(argc, argv);
    RunLimits limits = parseLimitsFlags(argc, argv);
    bool strict = parseBoolFlag(argc, argv, "strict");
    bool selfcheck = parseBoolFlag(argc, argv, "selfcheck");
    rejectUnknownArgs(*argc, argv);
    uint64_t cycles = benchCycles();
    interrupt::install();
    SimPool pool(jobs);
    if (strict)
        pool.setStrict(true);
    pool.setCheckpoint(ckpt);
    std::printf("upc780 bench: %s\n", title);
    std::printf("(composite of 5 workloads, %llu cycles each, "
                "%u worker threads; set UPC780_CYCLES / UPC780_JOBS "
                "to change)\n\n",
                static_cast<unsigned long long>(cycles),
                pool.workers());
    BenchRun r;
    std::vector<SimJob> jobs_list = compositeJobs(cycles);
    for (SimJob &j : jobs_list) {
        if (faults.enabled())
            j.sim.mem.faults = faults;
        if (limits.watchdogCycles)
            j.limits.watchdogCycles = limits.watchdogCycles;
        if (limits.timeoutSeconds > 0.0)
            j.limits.timeoutSeconds = limits.timeoutSeconds;
    }
    r.composite = pool.runComposite(jobs_list);
    r.ref = std::make_unique<Cpu780>();
    r.analyzer = std::make_unique<HistogramAnalyzer>(
        r.ref->controlStore(), r.composite.hist);
    PoolTelemetry tele = computeTelemetry(r.composite.parts);
    for (const auto &j : tele.jobs) {
        std::string marks;
        if (j.resumeCycle) {
            char buf[48];
            std::snprintf(buf, sizeof(buf),
                          "  resumed@%llu",
                          static_cast<unsigned long long>(
                              j.resumeCycle));
            marks += buf;
        }
        if (j.retries) {
            char buf[48];
            std::snprintf(buf, sizeof(buf), "  %u retried",
                          j.retries);
            marks += buf;
        }
        if (j.failed)
            marks += "  FAILED";
        if (j.interrupted)
            marks += "  INTERRUPTED";
        std::printf("  %-22s %9.2fs wall, %6.2f Msimcycles/s "
                    "(worker %u)%s\n",
                    j.name.c_str(), j.wallSeconds,
                    j.wallSeconds > 0
                        ? j.simCycles / j.wallSeconds * 1e-6
                        : 0.0,
                    j.worker, marks.c_str());
    }
    std::printf("pool: %s\n", tele.summary().c_str());
    std::printf("composite: %llu instructions, %llu cycles, "
                "%.2f cycles/instruction\n\n",
                static_cast<unsigned long long>(
                    r.analyzer->instructions()),
                static_cast<unsigned long long>(
                    r.analyzer->totalCycles()),
                r.analyzer->cyclesPerInstruction());
    if (interrupt::requested()) {
        // Partial stats were printed above; the drain already left a
        // final checkpoint per running job when --checkpoint-dir was
        // given.  Exit with the conventional 128+SIGINT status so
        // scripts can tell an interrupted run from a finished one.
        std::exit(interrupt::reportInterrupted(
            "composite above is partial", tele.interruptedJobs,
            ckpt.enabled()));
    }
    if (selfcheck) {
        std::vector<uint64_t> weights;
        for (const SimJob &j : jobs_list)
            weights.push_back(j.weight);
        SelfCheckReport rep = selfCheckComposite(
            r.ref->controlStore(), r.composite, weights);
        std::printf("%s\n\n", rep.summary().c_str());
        if (!rep.ok())
            fatal("self-check failed (%zu violations)",
                  rep.violations.size());
    }
    if (!stats_path.empty()) {
        stats::Registry reg;
        registerCompositeStats(reg, r.composite);
        if (!reg.saveJson(stats_path))
            fatal("cannot write stats JSON to '%s'",
                  stats_path.c_str());
        std::printf("stats: wrote %zu stats to %s\n\n", reg.size(),
                    stats_path.c_str());
    }
    return r;
}

/** "paper X / measured Y" cell helpers. */
inline std::string
pvm(double paper, double measured, int decimals = 2)
{
    return TextTable::num(paper, decimals) + " / " +
        TextTable::num(measured, decimals);
}

} // namespace vax::bench

#endif // UPC780_BENCH_BENCH_UTIL_HH
