/**
 * @file
 * Shared plumbing for the table benches: run the composite of the five
 * workloads once, analyze, and print measured values beside the
 * paper's published numbers.
 *
 * Simulated length per experiment defaults to 2,000,000 cycles
 * (0.4 simulated seconds); override with the UPC780_CYCLES environment
 * variable for longer, more stable runs.
 */

#ifndef UPC780_BENCH_BENCH_UTIL_HH
#define UPC780_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <string>

#include "cpu/cpu.hh"
#include "support/table.hh"
#include "upc/analyzer.hh"
#include "workload/experiments.hh"

namespace vax::bench
{

/** Everything a table bench needs. */
struct BenchRun
{
    CompositeResult composite;
    std::unique_ptr<Cpu780> ref; ///< for the control-store annotations
    std::unique_ptr<HistogramAnalyzer> analyzer;

    const HistogramAnalyzer &an() const { return *analyzer; }
};

inline BenchRun
runBench(const char *title)
{
    uint64_t cycles = benchCycles();
    std::printf("upc780 bench: %s\n", title);
    std::printf("(composite of 5 workloads, %llu cycles each; set "
                "UPC780_CYCLES to change)\n\n",
                static_cast<unsigned long long>(cycles));
    BenchRun r;
    r.composite = runComposite(cycles);
    r.ref = std::make_unique<Cpu780>();
    r.analyzer = std::make_unique<HistogramAnalyzer>(
        r.ref->controlStore(), r.composite.hist);
    std::printf("composite: %llu instructions, %llu cycles, "
                "%.2f cycles/instruction\n\n",
                static_cast<unsigned long long>(
                    r.analyzer->instructions()),
                static_cast<unsigned long long>(
                    r.analyzer->totalCycles()),
                r.analyzer->cyclesPerInstruction());
    return r;
}

/** "paper X / measured Y" cell helpers. */
inline std::string
pvm(double paper, double measured, int decimals = 2)
{
    return TextTable::num(paper, decimals) + " / " +
        TextTable::num(measured, decimals);
}

} // namespace vax::bench

#endif // UPC780_BENCH_BENCH_UTIL_HH
