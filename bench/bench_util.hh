/**
 * @file
 * Shared plumbing for the table benches: run the composite of the five
 * workloads once, analyze, and print measured values beside the
 * paper's published numbers.
 *
 * Simulated length per experiment defaults to 2,000,000 cycles
 * (0.4 simulated seconds); override with the UPC780_CYCLES environment
 * variable for longer, more stable runs.
 */

#ifndef UPC780_BENCH_BENCH_UTIL_HH
#define UPC780_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <string>

#include "cpu/cpu.hh"
#include "driver/sim_pool.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/trace.hh"
#include "upc/analyzer.hh"
#include "workload/experiments.hh"

namespace vax::bench
{

/** Everything a table bench needs. */
struct BenchRun
{
    CompositeResult composite;
    std::unique_ptr<Cpu780> ref; ///< for the control-store annotations
    std::unique_ptr<HistogramAnalyzer> analyzer;

    const HistogramAnalyzer &an() const { return *analyzer; }
};

/**
 * Run the composite for a table bench, honoring the shared
 * command-line surface (flags are stripped from argv):
 *
 *   --jobs N            worker threads (also UPC780_JOBS)
 *   --trace LIST        trace channels (also UPC780_TRACE)
 *   --stats-json PATH   write the composite's stats registry as JSON
 */
inline BenchRun
runBench(int *argc, char **argv, const char *title)
{
    trace::parseTraceFlag(argc, argv);
    unsigned jobs = parseJobsFlag(argc, argv, envJobs());
    std::string stats_path = stats::parseStatsJsonFlag(argc, argv);
    uint64_t cycles = benchCycles();
    SimPool pool(jobs);
    std::printf("upc780 bench: %s\n", title);
    std::printf("(composite of 5 workloads, %llu cycles each, "
                "%u worker threads; set UPC780_CYCLES / UPC780_JOBS "
                "to change)\n\n",
                static_cast<unsigned long long>(cycles),
                pool.workers());
    BenchRun r;
    r.composite = pool.runComposite(compositeJobs(cycles));
    r.ref = std::make_unique<Cpu780>();
    r.analyzer = std::make_unique<HistogramAnalyzer>(
        r.ref->controlStore(), r.composite.hist);
    PoolTelemetry tele = computeTelemetry(r.composite.parts);
    for (const auto &j : tele.jobs) {
        std::printf("  %-22s %9.2fs wall, %6.2f Msimcycles/s "
                    "(worker %u)\n",
                    j.name.c_str(), j.wallSeconds,
                    j.wallSeconds > 0
                        ? j.simCycles / j.wallSeconds * 1e-6
                        : 0.0,
                    j.worker);
    }
    std::printf("pool: %s\n", tele.summary().c_str());
    std::printf("composite: %llu instructions, %llu cycles, "
                "%.2f cycles/instruction\n\n",
                static_cast<unsigned long long>(
                    r.analyzer->instructions()),
                static_cast<unsigned long long>(
                    r.analyzer->totalCycles()),
                r.analyzer->cyclesPerInstruction());
    if (!stats_path.empty()) {
        stats::Registry reg;
        registerCompositeStats(reg, r.composite);
        if (reg.saveJson(stats_path))
            std::printf("stats: wrote %zu stats to %s\n\n",
                        reg.size(), stats_path.c_str());
    }
    return r;
}

/** "paper X / measured Y" cell helpers. */
inline std::string
pvm(double paper, double measured, int decimals = 2)
{
    return TextTable::num(paper, decimals) + " / " +
        TextTable::num(measured, decimals);
}

} // namespace vax::bench

#endif // UPC780_BENCH_BENCH_UTIL_HH
