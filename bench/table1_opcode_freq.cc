/**
 * @file
 * Table 1: opcode group frequency (percent of instructions executed),
 * reconstructed from execute-flow entry counts in the UPC histogram.
 */

#include "bench/bench_util.hh"

using namespace vax;
using namespace vax::bench;

int
main(int argc, char **argv)
{
    BenchRun r = runBench(&argc, argv, "Table 1 -- Opcode Group Frequency");

    struct RowDef
    {
        Group group;
        const char *constituents;
        double paper;
    };
    static const RowDef rows[] = {
        {Group::Simple,
         "moves, simple arith, boolean, branches, subroutine", 83.60},
        {Group::Field, "bit field operations", 6.92},
        {Group::Float, "floating point, integer mul/div", 3.62},
        {Group::CallRet, "procedure call/return, push/pop", 3.22},
        {Group::System, "privileged, ctx switch, services, queues",
         2.11},
        {Group::Character, "character string instructions", 0.43},
        {Group::Decimal, "decimal instructions", 0.03},
    };

    TextTable t("Opcode group frequency (percent of instructions)");
    t.addRow({"Group", "Constituents", "Paper", "Measured"});
    double total = 0.0;
    for (const auto &row : rows) {
        double m = 100.0 * r.an().groupFraction(row.group);
        total += m;
        t.addRow({groupName(row.group), row.constituents,
                  TextTable::num(row.paper, 2), TextTable::num(m, 2)});
    }
    t.rule();
    t.addRow({"TOTAL", "", "99.93", TextTable::num(total, 2)});
    std::printf("%s\n", t.str().c_str());
    return 0;
}
