/**
 * @file
 * Section 4 implementation events: IB referencing behaviour, cache
 * and TB misses, and stall anatomy.  TB misses come from the
 * histogram (microcode-visible); IB references and cache misses come
 * from the hardware counters -- the events the paper says the UPC
 * technique cannot see and takes from the separate cache study [2].
 */

#include "bench/bench_util.hh"

using namespace vax;
using namespace vax::bench;

int
main(int argc, char **argv)
{
    BenchRun r = runBench(&argc, argv, "Section 4 -- Implementation Events");

    const auto &hw = r.composite.hw;
    double instr = static_cast<double>(r.an().instructions());

    TextTable t("Implementation events per instruction "
                "(paper vs measured)");
    t.addRow({"Event", "Source", "Paper", "Measured"});
    t.addRow({"IB cache references", "hw counters [2]", "2.2",
              TextTable::num(hw.ibLongwordFetches / instr, 2)});
    {
        double total = 1.0 +
            (r.an().spec1PerInstr() + r.an().spec26PerInstr()) * 1.68 +
            r.an().bdispPerInstr();
        double per_ref = hw.ibLongwordFetches
            ? total * instr / hw.ibLongwordFetches : 0.0;
        t.addRow({"Bytes delivered per IB ref", "derived", "1.7",
                  TextTable::num(per_ref, 2)});
    }
    t.addRow({"Cache read misses (total)", "hw counters [2]", "0.28",
              TextTable::num((hw.cache.readMissesI +
                              hw.cache.readMissesD) / instr, 3)});
    t.addRow({"  I-stream misses", "hw counters [2]", "0.18",
              TextTable::num(hw.cache.readMissesI / instr, 3)});
    t.addRow({"  D-stream misses", "hw counters [2]", "0.10",
              TextTable::num(hw.cache.readMissesD / instr, 3)});
    t.addRow({"TB misses", "UPC histogram", "0.029",
              TextTable::num(r.an().tbMissPerInstr(), 3)});
    t.addRow({"  D-stream TB misses", "UPC histogram", "0.020",
              TextTable::num(r.an().tbMissPerInstrD(), 3)});
    t.addRow({"  I-stream TB misses", "UPC histogram", "0.009",
              TextTable::num(r.an().tbMissPerInstrI(), 3)});
    t.addRow({"TB service cycles per miss", "UPC histogram", "21.6",
              TextTable::num(r.an().tbServiceCyclesPerMiss(), 1)});
    t.addRow({"  of which read stalls", "UPC histogram", "3.5",
              TextTable::num(r.an().tbServiceStallPerMiss(), 1)});
    t.addRow({"Unaligned D-stream refs", "UPC histogram", "0.016",
              TextTable::num(r.an().unalignedPerInstr(), 4)});
    std::printf("%s\n", t.str().c_str());

    // Stall anatomy (§4.3).
    TextTable s("Stall cycles per instruction (Table 8 columns)");
    s.addRow({"Stall", "Paper", "Measured"});
    s.addRow({"Read stall", "0.964",
              TextTable::num(r.an().colTotal(TimeCol::RStall), 3)});
    s.addRow({"Write stall", "0.450",
              TextTable::num(r.an().colTotal(TimeCol::WStall), 3)});
    s.addRow({"IB stall", "0.720",
              TextTable::num(r.an().colTotal(TimeCol::IbStall), 3)});
    std::printf("%s\n", s.str().c_str());

    std::printf("Device traffic over the composite: %llu terminal "
                "lines in, %llu out, %llu disk transfers.\n\n",
                (unsigned long long)hw.terminalLinesIn,
                (unsigned long long)hw.terminalLinesOut,
                (unsigned long long)hw.diskTransfers);

    // Cache hit rates for context.
    double reads = hw.cache.readRefsI + hw.cache.readRefsD;
    double misses = hw.cache.readMissesI + hw.cache.readMissesD;
    std::printf("Cache read hit rate: %.1f%% over %.0fk read "
                "references; write references/instr: %.3f.\n",
                reads > 0 ? 100.0 * (1.0 - misses / reads) : 0.0,
                reads / 1000.0, hw.cache.writeRefs / instr);
    return 0;
}
