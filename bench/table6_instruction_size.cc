/**
 * @file
 * Table 6: estimated size of the average instruction.  Counts come
 * from the histogram (Table 3); byte sizes come from the hardware
 * decode counters, standing in for the displacement-size distribution
 * the paper took from Wiecek [15].
 */

#include "bench/bench_util.hh"

using namespace vax;
using namespace vax::bench;

int
main(int argc, char **argv)
{
    BenchRun r = runBench(&argc, argv, "Table 6 -- Estimated Size of Average Instr");

    const auto &hw = r.composite.hw.counters;
    double instr = static_cast<double>(hw.instructions);

    double specs = r.an().spec1PerInstr() + r.an().spec26PerInstr();
    double bdisps = r.an().bdispPerInstr();
    // Specifier size: one mode byte plus displacement/immediate
    // extension bytes (hardware counters).
    double ext_bytes = (hw.dispBytes + hw.immediateBytes) / instr;
    double spec_size = specs > 0 ? 1.0 + ext_bytes / specs : 0.0;
    double bdisp_size = bdisps > 0 ? (hw.bdispBytes / instr) / bdisps
                                   : 0.0;

    TextTable t("Size of the average instruction "
                "(paper | measured)");
    t.addRow({"Object", "Number/inst", "Est. size", "Bytes/inst"});
    t.addRow({"Opcode", pvm(1.00, 1.00), pvm(1.00, 1.00),
              pvm(1.00, 1.00)});
    t.addRow({"Specifiers", pvm(1.48, specs), pvm(1.68, spec_size),
              pvm(2.49, specs * spec_size)});
    t.addRow({"Branch disp.", pvm(0.31, bdisps),
              pvm(1.00, bdisp_size), pvm(0.31, bdisps * bdisp_size)});
    t.rule();
    double total = 1.0 + specs * spec_size + bdisps * bdisp_size;
    t.addRow({"TOTAL", "", "", pvm(3.8, total, 1)});
    std::printf("%s\n", t.str().c_str());

    // Section 4.1 tie-in: IB delivery efficiency.
    double ib_refs = r.composite.hw.ibLongwordFetches / instr;
    std::printf("Section 4.1: IB cache references/instr -- paper "
                "~2.2, measured %.2f;\n"
                "bytes delivered per reference -- paper ~1.7, "
                "measured %.2f.\n",
                ib_refs, ib_refs > 0 ? total / ib_refs : 0.0);
    return 0;
}
