/**
 * @file
 * Ablation: context-switch (TB flush) interval.
 *
 * Section 3.4 of the paper: "The context-switch figure is useful in
 * setting the 'flush' interval in cache and translation buffer
 * simulations."  LDPCTX invalidates the process half of the TB, so
 * the scheduling quantum directly sets the flush interval.  This
 * sweep shows TB misses and their service cost responding to it --
 * the experiment the measured headway (Table 7) parameterizes.
 */

#include <cstdio>

#include "cpu/cpu.hh"
#include "driver/sim_pool.hh"
#include "support/table.hh"
#include "upc/analyzer.hh"
#include "workload/experiments.hh"

using namespace vax;

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobsFlag(&argc, argv, envJobs());
    uint64_t cycles = benchCycles(1'000'000);
    WorkloadProfile prof = educationalProfile();
    std::printf("TB flush-interval ablation under '%s' "
                "(%llu cycles each)\n\n",
                prof.name.c_str(), (unsigned long long)cycles);

    static const uint32_t quanta[] = {1u, 2u, 3u, 6u, 12u};
    std::vector<SimJob> sweep;
    for (uint32_t q : quanta) {
        SimJob job = SimJob::forProfile(prof, cycles);
        job.vms.quantumTicks = q;
        sweep.push_back(job);
    }
    std::vector<ExperimentResult> results = SimPool(jobs).run(sweep);

    TextTable t("Effect of the scheduling quantum (flush interval)");
    t.addRow({"Quantum ticks", "CtxSw headway", "TB miss/instr",
              "MemMgmt cyc/instr", "CPI"});
    Cpu780 ref;
    for (size_t i = 0; i < sweep.size(); ++i) {
        uint32_t q = quanta[i];
        HistogramAnalyzer an(ref.controlStore(), results[i].hist);
        std::string label = std::to_string(q) +
            (q == 4 ? " (default)" : "");
        t.addRow({label,
                  TextTable::num(an.headwayContextSwitches(), 0),
                  TextTable::num(an.tbMissPerInstr(), 4),
                  TextTable::num(an.rowTotal(Row::MemMgmt), 3),
                  TextTable::num(an.cyclesPerInstruction(), 2)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf(
        "Expected shape: CPI falls as the quantum grows (fewer "
        "flushes, fewer context-switch\ncosts), and the shortest "
        "quantum shows the most TB-miss service time -- the\n"
        "dependency the paper's headway figure (Table 7) quantifies "
        "for TB simulations.\nNote: changing the quantum also "
        "changes which code each process executes per slice,\nso "
        "the middle of the miss-rate column carries secondary "
        "scheduling variation.\n");
    return 0;
}
