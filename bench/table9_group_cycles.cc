/**
 * @file
 * Table 9: cycles per average instruction WITHIN each group
 * (execute phase only, unweighted by frequency) -- Table 8's exec
 * rows divided by each group's instruction count.
 */

#include "bench/bench_util.hh"

using namespace vax;
using namespace vax::bench;

int
main(int argc, char **argv)
{
    BenchRun r = runBench(&argc, argv, "Table 9 -- Cycles per Instruction Within "
                          "Each Group");

    struct RowDef
    {
        Group group;
        Row row;
        const char *paper_total; ///< "-" where the text is illegible
    };
    static const RowDef rows[] = {
        {Group::Simple, Row::ExecSimple, "1.17 (compute)"},
        {Group::Field, Row::ExecField, "8.67"},
        {Group::Float, Row::ExecFloat, "8.33"},
        {Group::CallRet, Row::ExecCallRet, "45.25"},
        {Group::System, Row::ExecSystem, "24.74"},
        {Group::Character, Row::ExecCharacter, "117.04"},
        {Group::Decimal, Row::ExecDecimal, "100.77"},
    };

    TextTable t("Execute-phase cycles per group member "
                "(exclusive of specifier processing)");
    t.addRow({"Group", "M Compute", "M Read", "M R-Stall", "M Write",
              "M W-Stall", "M Total", "Paper total"});
    for (const auto &row : rows) {
        double f = r.an().groupFraction(row.group);
        if (f <= 0.0) {
            t.addRow({groupName(row.group), "-", "-", "-", "-", "-",
                      "-", row.paper_total});
            continue;
        }
        auto per = [&](TimeCol c) {
            return TextTable::num(r.an().cell(row.row, c) / f, 2);
        };
        double total = r.an().rowTotal(row.row) / f;
        t.addRow({groupName(row.group), per(TimeCol::Compute),
                  per(TimeCol::Read), per(TimeCol::RStall),
                  per(TimeCol::Write), per(TimeCol::WStall),
                  TextTable::num(total, 2), row.paper_total});
    }
    std::printf("%s\n", t.str().c_str());

    std::printf(
        "Paper properties to check:\n"
        "  - the average SIMPLE instruction needs little more than "
        "one compute cycle;\n"
        "  - the range across groups covers two orders of "
        "magnitude;\n"
        "  - CALL/RET+PUSHR/POPR move ~4 reads and ~4 writes each "
        "(~8 registers per push/pop pair);\n"
        "  - CHARACTER reads/writes ~9-11 longwords -> strings of "
        "36-44 bytes.\n\n");
    double fc = r.an().groupFraction(Group::CallRet);
    double fch = r.an().groupFraction(Group::Character);
    if (fc > 0 && fch > 0) {
        std::printf("Measured: CALL/RET reads %.1f writes %.1f per "
                    "member; CHARACTER reads %.1f writes %.1f.\n",
                    r.an().readsPerInstr(Row::ExecCallRet) / fc,
                    r.an().writesPerInstr(Row::ExecCallRet) / fc,
                    r.an().readsPerInstr(Row::ExecCharacter) / fch,
                    r.an().writesPerInstr(Row::ExecCharacter) / fch);
    }
    return 0;
}
