/**
 * @file
 * Table 3: operand specifiers and branch displacements per average
 * instruction, from specifier-routine entry counts.
 */

#include "bench/bench_util.hh"

using namespace vax;
using namespace vax::bench;

int
main(int argc, char **argv)
{
    BenchRun r = runBench(&argc, argv, 
        "Table 3 -- Specifiers and Branch Displacements per Instr");

    TextTable t("Per average instruction");
    t.addRow({"Object", "Paper", "Measured"});
    t.addRow({"First specifiers", "0.726",
              TextTable::num(r.an().spec1PerInstr(), 3)});
    t.addRow({"Other specifiers", "0.758",
              TextTable::num(r.an().spec26PerInstr(), 3)});
    t.addRow({"Branch displacements", "0.312",
              TextTable::num(r.an().bdispPerInstr(), 3)});
    t.rule();
    t.addRow({"All specifiers", "1.484",
              TextTable::num(r.an().spec1PerInstr() +
                             r.an().spec26PerInstr(), 3)});
    std::printf("%s\n", t.str().c_str());

    // Cross-check against the hardware decode counters.
    const auto &hw = r.composite.hw.counters;
    std::printf("hardware cross-check: %.3f specifiers/instr "
                "(%.3f first), %.3f bdisp fields/instr\n",
                double(hw.specifiers) / hw.instructions,
                double(hw.firstSpecifiers) / hw.instructions,
                double(hw.bdispCount) / hw.instructions);
    return 0;
}
