/**
 * @file
 * Table 5: D-stream reads and writes per average instruction, broken
 * down by the activity (row) issuing them: each normal-count cycle of
 * a read/write microword is one memory operation.
 */

#include "bench/bench_util.hh"

using namespace vax;
using namespace vax::bench;

int
main(int argc, char **argv)
{
    BenchRun r = runBench(&argc, argv, "Table 5 -- D-stream Reads and Writes");

    struct RowDef
    {
        Row row;
        const char *pr; ///< paper reads (or "-" where the text is
                        ///< illegible)
        const char *pw;
    };
    static const RowDef rows[] = {
        {Row::Spec1, "0.306", "-"},
        {Row::Spec26, "0.148", "-"},
        {Row::ExecSimple, "-", "-"},
        {Row::ExecField, "-", "0.007"},
        {Row::ExecFloat, "-", "-"},
        {Row::ExecCallRet, "0.133", "0.130"},
        {Row::ExecSystem, "-", "-"},
        {Row::ExecCharacter, "0.039", "0.046"},
        {Row::ExecDecimal, "0.002", "0.001"},
        {Row::Bdisp, "0.000", "0.000"},
        {Row::IntExcept, "-", "-"},
        {Row::MemMgmt, "-", "-"},
    };

    TextTable t("Reads/writes per average instruction "
                "(paper | measured)");
    t.addRow({"Source", "P reads", "M reads", "P writes", "M writes"});
    for (const auto &row : rows) {
        t.addRow({rowName(row.row), row.pr,
                  TextTable::num(r.an().readsPerInstr(row.row), 3),
                  row.pw,
                  TextTable::num(r.an().writesPerInstr(row.row), 3)});
    }
    t.rule();
    t.addRow({"TOTAL", "0.783",
              TextTable::num(r.an().totalReadsPerInstr(), 3), "0.409",
              TextTable::num(r.an().totalWritesPerInstr(), 3)});
    std::printf("%s\n", t.str().c_str());

    double ratio = r.an().totalWritesPerInstr() > 0
        ? r.an().totalReadsPerInstr() / r.an().totalWritesPerInstr()
        : 0.0;
    std::printf("Read:write ratio -- paper ~2:1, measured %.2f:1.\n",
                ratio);
    std::printf("Unaligned D-stream references/instr -- paper 0.016, "
                "measured %.4f.\n",
                r.an().unalignedPerInstr());
    return 0;
}
