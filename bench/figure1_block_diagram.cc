/**
 * @file
 * Figure 1: the VAX-11/780 block diagram -- rendered from the actual
 * component structure of the simulator, with each component's live
 * configuration, so the diagram cannot drift from the code.
 */

#include <cstdio>

#include "cpu/cpu.hh"

using namespace vax;

int
main()
{
    Cpu780 cpu;
    const MemConfig &m = cpu.mem().config();

    std::printf("Figure 1 -- VAX-11/780 block diagram "
                "(simulator component graph)\n\n");
    std::printf(
        "          CPU pipeline                        Memory "
        "subsystem\n"
        " +-----------------------------+     "
        "+---------------------------------+\n"
        " |  I-Fetch --> IB (%2u bytes)  |     |  Translation Buffer"
        "             |\n"
        " |      |                      |---->|  %u + %u entries "
        "(sys/process)   |\n"
        " |      v                      |     |  microcode-filled "
        "on miss       |\n"
        " |  I-Decode (dispatch ROM)    |     "
        "+----------------+----------------+\n"
        " |      |                      |                      |\n"
        " |      v                      |                      v\n"
        " |  EBOX: %4u microwords      |     |  Cache: %u KB, "
        "%u-way, %u B blocks |\n"
        " |  (200 ns microcycle)        |---->|  write-through, no "
        "write-alloc   |\n"
        " |      |                      |     "
        "+----------------+----------------+\n"
        " |      +--- UPC monitor tap   |                      |\n"
        " +-----------------------------+                      v\n"
        "        |                            |  Write buffer: 1 "
        "longword,       |\n"
        "        |  micro-PC each cycle       |  %u-cycle drain     "
        "            |\n"
        "        v                            "
        "+----------------+----------------+\n"
        " +--------------------+                              |\n"
        " | UPC histogram board|                              v\n"
        " | 16K buckets x 2    |             |  SBI --> memory: %u "
        "MB,          |\n"
        " | (normal + stalled) |             |  %u-cycle read-miss "
        "penalty     |\n"
        " +--------------------+             "
        "+---------------------------------+\n\n",
        cpu.ib().capacity(),
        m.tbSystemEntries, m.tbProcessEntries,
        cpu.controlStore().size(),
        m.cacheBytes >> 10, m.cacheWays, m.cacheBlockBytes,
        m.writeDrainCycles,
        m.memBytes >> 20, m.readMissPenalty);

    std::printf("Control store inventory (microcode by Table 8 "
                "row):\n");
    unsigned counts[static_cast<size_t>(Row::NumRows)] = {};
    for (UAddr a = 0; a < cpu.controlStore().size(); ++a)
        ++counts[static_cast<size_t>(
            cpu.controlStore().annotation(a).row)];
    for (unsigned i = 0; i < static_cast<unsigned>(Row::NumRows); ++i)
        std::printf("  %-12s %4u microwords\n",
                    rowName(static_cast<Row>(i)), counts[i]);
    return 0;
}
