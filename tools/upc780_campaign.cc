/**
 * @file
 * The campaign tool: one characterization run sharded across a
 * supervised fleet of worker processes (see src/driver/campaign.hh
 * and DESIGN.md §13).
 *
 * The same binary is both roles: invoked plain it is the supervisor
 * (spool setup, shard fleet, liveness sweep, hierarchical merge);
 * invoked with --shard --shard-id N (by the supervisor, via
 * fork/exec of /proc/self/exe) it is one work-stealing shard.
 */

#include "driver/campaign.hh"

int
main(int argc, char **argv)
{
    vax::CampaignConfig cfg =
        vax::CampaignConfig::parseFlags(&argc, argv);
    return cfg.shardMode ? vax::runCampaignShard(cfg)
                         : vax::runCampaignSupervisor(cfg);
}
