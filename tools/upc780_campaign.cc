/**
 * @file
 * The campaign tool: one characterization run sharded across a
 * supervised fleet of worker processes (see src/driver/campaign.hh
 * and DESIGN.md §13).
 *
 * The same binary is both roles: invoked plain it is the supervisor
 * (spool setup, shard fleet, liveness sweep, hierarchical merge);
 * invoked with --shard --shard-id N (by the supervisor, via
 * fork/exec of /proc/self/exe) it is one work-stealing shard.
 *
 * --io-faults / UPC780_IO_FAULTS arms the host-I/O fault injector
 * (DESIGN.md §14) for this process before anything touches the
 * spool; --chaos-drill SEED instead derives a per-shard schedule and
 * keeps the supervisor clean.
 */

#include "driver/campaign.hh"
#include "support/iofault.hh"

int
main(int argc, char **argv)
{
    vax::CampaignConfig cfg =
        vax::CampaignConfig::parseFlags(&argc, argv);
    if (!cfg.ioFaults.empty()) {
        static vax::io::FaultInjector injector(
            vax::io::FaultPlan::parse(cfg.ioFaults));
        vax::io::installFaultInjector(&injector);
    }
    return cfg.shardMode ? vax::runCampaignShard(cfg)
                         : vax::runCampaignSupervisor(cfg);
}
