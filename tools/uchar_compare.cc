/**
 * @file
 * uchar_compare -- zero-tolerance diff of two ucharacterize JSON
 * reports (committed baseline vs. fresh run).
 *
 * Like bench_compare for wall-clock benchmarks, but exact: every
 * quantity in a report is a raw simulated-cycle integer, so any
 * difference at all is a real behaviour change.  Every difference is
 * reported with the opcode and specifier mode it belongs to, so a CI
 * failure reads as "MOVL (Rn)+: uwords 2816 -> 2824 (+8)".
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "upc/ucharacterize.hh"

namespace
{

bool
readFile(const char *path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace vax;

    if (argc == 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
        std::printf("usage: %s BASELINE.json CURRENT.json\n"
                    "\n"
                    "Exit 0 when the reports are identical, 1 with a\n"
                    "named per-opcode delta report otherwise.\n",
                    argv[0]);
        return 0;
    }
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: %s BASELINE.json CURRENT.json\n",
                     argv[0]);
        return 2;
    }

    std::string base_text, cur_text, err;
    if (!readFile(argv[1], &base_text)) {
        std::fprintf(stderr, "uchar_compare: cannot read '%s'\n",
                     argv[1]);
        return 2;
    }
    if (!readFile(argv[2], &cur_text)) {
        std::fprintf(stderr, "uchar_compare: cannot read '%s'\n",
                     argv[2]);
        return 2;
    }

    UcharReport baseline, current;
    if (!ucharParseJson(base_text, &baseline, &err)) {
        std::fprintf(stderr, "uchar_compare: %s: %s\n", argv[1],
                     err.c_str());
        return 2;
    }
    if (!ucharParseJson(cur_text, &current, &err)) {
        std::fprintf(stderr, "uchar_compare: %s: %s\n", argv[2],
                     err.c_str());
        return 2;
    }

    UcharDiff diff = ucharCompare(baseline, current);
    if (diff.ok()) {
        std::printf("uchar_compare: OK -- %zu rows, %zu skips, all "
                    "cycle counts identical\n",
                    current.rows.size(), current.skipped.size());
        return 0;
    }
    std::fprintf(stderr,
                 "uchar_compare: %zu difference(s) vs baseline:\n",
                 diff.messages.size());
    for (const auto &m : diff.messages)
        std::fprintf(stderr, "  %s\n", m.c_str());
    std::fprintf(stderr,
                 "If the cycle change is intentional, regenerate the "
                 "baseline:\n  ucharacterize --json --out "
                 "UCHAR_baseline.json\n");
    return 1;
}
