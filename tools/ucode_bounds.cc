/**
 * @file
 * ucode_bounds -- static cycle-bound analysis of the production
 * microcode, and the static-vs-dynamic consistency gate.
 *
 * Runs the ubound pass (src/analysis/ubound) over the built ROM and
 * prints the per-dispatch-root [bcc, wcc] cycle bounds as text
 * (default), CSV or JSON.  With --check, a committed ucharacterize
 * baseline is cross-validated: every measured row's whole-program
 * cycle count must fall inside the statically composed bounds
 * (sum over the variant's instruction profile of count x [lo, hi]),
 * with named per-opcode violations and exit 1 on any breach.  All
 * output is byte-identical across runs and --jobs settings.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/ubound.hh"
#include "driver/sim_pool.hh"
#include "support/stats.hh"
#include "ucode/rom.hh"
#include "upc/ucharacterize.hh"
#include "workload/uchar_corpus.hh"

namespace
{

void
printUsage(const char *prog, std::FILE *out)
{
    std::fprintf(out,
        "usage: %s [options]\n"
        "\n"
        "Static cycle-bound analysis of the microcode ROM.\n"
        "\n"
        "options:\n"
        "  --check FILE      cross-check a ucharacterize baseline "
        "JSON:\n"
        "                    every measured row must satisfy\n"
        "                    bcc <= cycles <= wcc (exit 1 on breach)\n"
        "  --annotate FILE   with --check: write the baseline back "
        "out\n"
        "                    with bcc/wcc columns attached per row\n"
        "  --json            emit the bounds report as JSON\n"
        "  --csv             emit the bounds report as CSV\n"
        "  --out FILE        write the report to FILE instead of "
        "stdout\n"
        "  --jobs N          worker threads for the baseline check "
        "(0 =\n"
        "                    one per core; output is byte-identical "
        "at\n"
        "                    any worker count)\n"
        "  --stats-json FILE also dump ubound.* / uchar.bounds.* "
        "stats\n"
        "  --help            this message\n",
        prog);
}

bool
parseValueFlag(int *argc, char **argv, const char *name,
               std::string *value)
{
    size_t len = std::strlen(name);
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        bool match_split = std::strcmp(arg, name) == 0;
        bool match_eq = std::strncmp(arg, name, len) == 0 &&
            arg[len] == '=';
        if (!match_split && !match_eq)
            continue;
        int used = 1;
        if (match_eq) {
            *value = arg + len + 1;
        } else {
            if (i + 1 >= *argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], name);
                std::exit(2);
            }
            *value = argv[i + 1];
            used = 2;
        }
        for (int j = i; j + used <= *argc; ++j)
            argv[j] = argv[j + used];
        *argc -= used;
        return true;
    }
    return false;
}

bool
readFile(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, n);
    std::fclose(f);
    return true;
}

bool
writeFile(const char *prog, const std::string &path,
          const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "%s: cannot write '%s'\n", prog,
                     path.c_str());
        return false;
    }
    std::fputs(text.c_str(), f);
    std::fclose(f);
    return true;
}

/** Static whole-program bounds of one generated variant: the profile
 *  counts times the per-instruction composed range. */
vax::UBoundAnalysis::Range
programBounds(const vax::UBoundAnalysis &ub,
              const vax::UcharProgram &prog, std::string *why)
{
    using Range = vax::UBoundAnalysis::Range;
    Range total;
    total.valid = true;
    for (const vax::UcharProfileEntry &e : prog.profile) {
        std::vector<vax::UBoundAnalysis::SpecUse> specs;
        specs.reserve(e.specs.size());
        for (const vax::UcharSpecUse &s : e.specs)
            specs.push_back({s.mode, s.indexed});
        Range ir = ub.instrRange(e.opcode, specs);
        if (!ir.valid) {
            *why = std::string("no static bound for opcode ") +
                vax::opcodeInfo(e.opcode).mnemonic;
            return Range{};
        }
        total.lo += e.count * ir.lo;
        total.hi += e.count * ir.hi;
    }
    return total;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace vax;

    if (parseBoolFlag(&argc, argv, "help")) {
        printUsage(argv[0], stdout);
        return 0;
    }

    bool json = parseBoolFlag(&argc, argv, "json");
    bool csv = parseBoolFlag(&argc, argv, "csv");
    unsigned jobs = parseJobsFlag(&argc, argv, envJobs(0));
    std::string statsPath = stats::parseStatsJsonFlag(&argc, argv);

    std::string check_path, annotate_path, out_path, value;
    if (parseValueFlag(&argc, argv, "--check", &value))
        check_path = value;
    if (parseValueFlag(&argc, argv, "--annotate", &value))
        annotate_path = value;
    if (parseValueFlag(&argc, argv, "--out", &value))
        out_path = value;

    if (argc > 1) {
        std::fprintf(stderr, "%s: unrecognized argument '%s'\n\n",
                     argv[0], argv[1]);
        printUsage(argv[0], stderr);
        return 2;
    }
    if (json && csv) {
        std::fprintf(stderr, "%s: pick one of --json / --csv\n",
                     argv[0]);
        return 2;
    }
    if (!annotate_path.empty() && check_path.empty()) {
        std::fprintf(stderr, "%s: --annotate requires --check\n",
                     argv[0]);
        return 2;
    }

    ControlStore cs;
    buildMicrocodeRom(cs);
    UBoundAnalysis ub(cs);
    UBoundReport report = ub.report();

    UcharReport baseline;
    bool checked = false;
    if (!check_path.empty()) {
        std::string text, err;
        if (!readFile(check_path, &text)) {
            std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0],
                         check_path.c_str());
            return 2;
        }
        if (!ucharParseJson(text, &baseline, &err)) {
            std::fprintf(stderr, "%s: %s: %s\n", argv[0],
                         check_path.c_str(), err.c_str());
            return 2;
        }
        checked = true;

        // Regenerate the corpus at the baseline's parameters: each
        // variant carries the exact instruction profile of the image
        // the measurement ran.
        UcharParams params;
        params.iters = baseline.params.iters;
        params.unroll = baseline.params.unroll;
        params.maxCycles = baseline.params.maxCycles;
        std::vector<UcharVariant> variants =
            ucharEnumerate(params, UcharSuiteOptions{});
        std::map<std::string, const UcharProgram *> byKey;
        for (const UcharVariant &v : variants)
            if (v.runnable)
                byKey.emplace(v.op + "\t" + v.mode, &v.prog);

        // Per-row bound composition, fanned out deterministically:
        // results land by index, so any schedule yields the same
        // report.
        struct RowBound
        {
            bool found = false;
            bool valid = false;
            std::string why;
            uint64_t lo = 0, hi = 0;
        };
        std::vector<RowBound> rb(baseline.rows.size());
        SimPool pool(jobs);
        pool.forEach(baseline.rows.size(), [&](size_t i) {
            const UcharRow &row = baseline.rows[i];
            auto it = byKey.find(row.op + "\t" + row.mode);
            if (it == byKey.end())
                return;
            rb[i].found = true;
            auto r = programBounds(ub, *it->second, &rb[i].why);
            rb[i].valid = r.valid;
            rb[i].lo = r.lo;
            rb[i].hi = r.hi;
        });

        for (size_t i = 0; i < baseline.rows.size(); ++i) {
            UcharRow &row = baseline.rows[i];
            std::string name = row.op + " " + row.mode;
            if (!rb[i].found) {
                UBoundDiag d;
                d.check = UBoundCheck::Baseline;
                d.where = name;
                d.message =
                    "baseline row has no runnable corpus variant";
                report.diags.push_back(std::move(d));
                continue;
            }
            if (!rb[i].valid) {
                UBoundDiag d;
                d.check = UBoundCheck::Baseline;
                d.where = name;
                d.message = rb[i].why;
                report.diags.push_back(std::move(d));
                continue;
            }
            row.bcc = rb[i].lo;
            row.wcc = rb[i].hi;
            row.hasBounds = true;
            uboundCheckMeasured(name, row.run.cycles, rb[i].lo,
                                rb[i].hi, &report.diags);
        }

        // The shared calibration loop is a measured quantity too.
        {
            UcharProgram calib = ucharCalibration(params);
            std::string why;
            auto r = programBounds(ub, calib, &why);
            if (!r.valid) {
                UBoundDiag d;
                d.check = UBoundCheck::Baseline;
                d.where = "(calibration)";
                d.message = why;
                report.diags.push_back(std::move(d));
            } else {
                uboundCheckMeasured("(calibration)",
                                    baseline.calibration.cycles, r.lo,
                                    r.hi, &report.diags);
            }
        }

        if (!annotate_path.empty() &&
            !writeFile(argv[0], annotate_path, ucharJson(baseline)))
            return 1;
    }

    std::string text = json ? report.json()
        : csv             ? report.csv()
                          : report.text();
    if (out_path.empty()) {
        std::fputs(text.c_str(), stdout);
    } else if (!writeFile(argv[0], out_path, text)) {
        return 1;
    }

    if (!statsPath.empty()) {
        stats::Registry reg;
        regUBoundStats(report, reg, "ubound");
        if (checked)
            regUcharBounds(reg, "uchar.", baseline);
        if (!reg.saveJson(statsPath))
            return 1;
    }
    return report.clean() ? 0 : 1;
}
