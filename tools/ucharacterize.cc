/**
 * @file
 * ucharacterize -- generate and run the per-opcode x specifier-mode
 * characterization suite, and publish the table.
 *
 * Every implemented opcode is crossed with every legal specifier
 * class, each cell runs as a steady-state microbenchmark through the
 * UPC monitor, and the per-instruction metrics (cycles, microwords,
 * stall anatomy, throughput) are printed as text (default), CSV or
 * JSON.  The JSON form is the committed-baseline format consumed by
 * uchar_compare; all three forms are byte-identical for a given
 * corpus regardless of --jobs.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "driver/sim_pool.hh"
#include "support/stats.hh"
#include "upc/ucharacterize.hh"
#include "workload/uchar_corpus.hh"

namespace
{

void
printUsage(const char *prog, std::FILE *out)
{
    std::fprintf(out,
        "usage: %s [options]\n"
        "\n"
        "Run the per-opcode x specifier-mode characterization suite.\n"
        "\n"
        "options:\n"
        "  --json            emit the report as JSON (baseline format)\n"
        "  --csv             emit the report as CSV\n"
        "  --out FILE        write the report to FILE instead of stdout\n"
        "  --jobs N          worker threads (0 = one per core; output\n"
        "                    is byte-identical at any worker count)\n"
        "  --opcode LIST     only the comma-separated mnemonics\n"
        "  --smoke           small corpus (a fixed opcode subset) with\n"
        "                    a short loop -- the ctest smoke entry\n"
        "  --iters N         steady-state loop iterations (default 16)\n"
        "  --unroll N        copies per iteration (default 8)\n"
        "  --stats-json FILE also dump suite stats (uchar.* registry)\n"
        "  --help            this message\n",
        prog);
}

bool
parseValueFlag(int *argc, char **argv, const char *name,
               std::string *value)
{
    size_t len = std::strlen(name);
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        bool match_split = std::strcmp(arg, name) == 0;
        bool match_eq = std::strncmp(arg, name, len) == 0 &&
            arg[len] == '=';
        if (!match_split && !match_eq)
            continue;
        int used = 1;
        if (match_eq) {
            *value = arg + len + 1;
        } else {
            if (i + 1 >= *argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], name);
                std::exit(2);
            }
            *value = argv[i + 1];
            used = 2;
        }
        for (int j = i; j + used <= *argc; ++j)
            argv[j] = argv[j + used];
        *argc -= used;
        return true;
    }
    return false;
}

uint32_t
parseU32(const char *prog, const char *what, const std::string &s)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(s.c_str(), &end, 10);
    if (s.empty() || *end || v == 0 || v > 0xFFFFFFFFul) {
        std::fprintf(stderr, "%s: bad %s '%s' (positive integer)\n",
                     prog, what, s.c_str());
        std::exit(2);
    }
    return static_cast<uint32_t>(v);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace vax;

    if (parseBoolFlag(&argc, argv, "help")) {
        printUsage(argv[0], stdout);
        return 0;
    }

    bool json = parseBoolFlag(&argc, argv, "json");
    bool csv = parseBoolFlag(&argc, argv, "csv");
    bool smoke = parseBoolFlag(&argc, argv, "smoke");
    unsigned jobs = parseJobsFlag(&argc, argv, envJobs(0));
    std::string statsPath = stats::parseStatsJsonFlag(&argc, argv);

    UcharParams params;
    UcharSuiteOptions opts;
    std::string out_path, value;
    if (parseValueFlag(&argc, argv, "--out", &value))
        out_path = value;
    if (parseValueFlag(&argc, argv, "--opcode", &value))
        opts.opcodeFilter = value;
    if (smoke) {
        params.iters = 4;
        if (opts.opcodeFilter.empty())
            opts.opcodeFilter = "MOVL,ADDL3,CMPB,JMP,CALLS,RET,"
                                "SOBGTR,EXTV,MULF2,MOVC3,ADDP4,"
                                "INSQUE,MTPR";
    }
    if (parseValueFlag(&argc, argv, "--iters", &value))
        params.iters = parseU32(argv[0], "--iters", value);
    if (parseValueFlag(&argc, argv, "--unroll", &value))
        params.unroll = parseU32(argv[0], "--unroll", value);

    if (argc > 1) {
        std::fprintf(stderr, "%s: unrecognized argument '%s'\n\n",
                     argv[0], argv[1]);
        printUsage(argv[0], stderr);
        return 2;
    }
    if (json && csv) {
        std::fprintf(stderr, "%s: pick one of --json / --csv\n",
                     argv[0]);
        return 2;
    }

    SimPool pool(jobs);
    ParallelFor pf = [&pool](size_t n,
                             const std::function<void(size_t)> &fn) {
        pool.forEach(n, fn);
    };
    UcharReport rep = runUcharSuite(params, pf, opts);

    std::string text = json ? ucharJson(rep)
        : csv             ? ucharCsv(rep)
                          : ucharText(rep);
    if (out_path.empty()) {
        std::fputs(text.c_str(), stdout);
    } else {
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0],
                         out_path.c_str());
            return 1;
        }
        std::fputs(text.c_str(), f);
        std::fclose(f);
    }

    if (!statsPath.empty()) {
        stats::Registry reg;
        regUcharStats(reg, "uchar.", rep);
        if (!reg.saveJson(statsPath))
            return 1;
    }
    return 0;
}
