file(REMOVE_RECURSE
  "CMakeFiles/vax_cpu.dir/__/ucode/rom.cc.o"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom.cc.o.d"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_callret.cc.o"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_callret.cc.o.d"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_char.cc.o"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_char.cc.o.d"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_decimal.cc.o"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_decimal.cc.o.d"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_field.cc.o"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_field.cc.o.d"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_float.cc.o"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_float.cc.o.d"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_mm.cc.o"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_mm.cc.o.d"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_simple.cc.o"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_simple.cc.o.d"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_spec.cc.o"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_spec.cc.o.d"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_system.cc.o"
  "CMakeFiles/vax_cpu.dir/__/ucode/rom_system.cc.o.d"
  "CMakeFiles/vax_cpu.dir/cpu.cc.o"
  "CMakeFiles/vax_cpu.dir/cpu.cc.o.d"
  "CMakeFiles/vax_cpu.dir/ebox.cc.o"
  "CMakeFiles/vax_cpu.dir/ebox.cc.o.d"
  "CMakeFiles/vax_cpu.dir/ifetch.cc.o"
  "CMakeFiles/vax_cpu.dir/ifetch.cc.o.d"
  "CMakeFiles/vax_cpu.dir/interrupts.cc.o"
  "CMakeFiles/vax_cpu.dir/interrupts.cc.o.d"
  "CMakeFiles/vax_cpu.dir/tracer.cc.o"
  "CMakeFiles/vax_cpu.dir/tracer.cc.o.d"
  "libvax_cpu.a"
  "libvax_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vax_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
