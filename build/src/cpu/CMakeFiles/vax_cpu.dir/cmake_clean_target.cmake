file(REMOVE_RECURSE
  "libvax_cpu.a"
)
