
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ucode/rom.cc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom.cc.o.d"
  "/root/repo/src/ucode/rom_callret.cc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_callret.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_callret.cc.o.d"
  "/root/repo/src/ucode/rom_char.cc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_char.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_char.cc.o.d"
  "/root/repo/src/ucode/rom_decimal.cc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_decimal.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_decimal.cc.o.d"
  "/root/repo/src/ucode/rom_field.cc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_field.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_field.cc.o.d"
  "/root/repo/src/ucode/rom_float.cc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_float.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_float.cc.o.d"
  "/root/repo/src/ucode/rom_mm.cc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_mm.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_mm.cc.o.d"
  "/root/repo/src/ucode/rom_simple.cc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_simple.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_simple.cc.o.d"
  "/root/repo/src/ucode/rom_spec.cc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_spec.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_spec.cc.o.d"
  "/root/repo/src/ucode/rom_system.cc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_system.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/__/ucode/rom_system.cc.o.d"
  "/root/repo/src/cpu/cpu.cc" "src/cpu/CMakeFiles/vax_cpu.dir/cpu.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/cpu.cc.o.d"
  "/root/repo/src/cpu/ebox.cc" "src/cpu/CMakeFiles/vax_cpu.dir/ebox.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/ebox.cc.o.d"
  "/root/repo/src/cpu/ifetch.cc" "src/cpu/CMakeFiles/vax_cpu.dir/ifetch.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/ifetch.cc.o.d"
  "/root/repo/src/cpu/interrupts.cc" "src/cpu/CMakeFiles/vax_cpu.dir/interrupts.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/interrupts.cc.o.d"
  "/root/repo/src/cpu/tracer.cc" "src/cpu/CMakeFiles/vax_cpu.dir/tracer.cc.o" "gcc" "src/cpu/CMakeFiles/vax_cpu.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ucode/CMakeFiles/vax_ucode.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vax_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vax_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vax_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
