# Empty dependencies file for vax_cpu.
# This may be replaced when dependencies are built.
