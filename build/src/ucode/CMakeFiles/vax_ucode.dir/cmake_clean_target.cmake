file(REMOVE_RECURSE
  "libvax_ucode.a"
)
