file(REMOVE_RECURSE
  "CMakeFiles/vax_ucode.dir/control_store.cc.o"
  "CMakeFiles/vax_ucode.dir/control_store.cc.o.d"
  "CMakeFiles/vax_ucode.dir/uops.cc.o"
  "CMakeFiles/vax_ucode.dir/uops.cc.o.d"
  "libvax_ucode.a"
  "libvax_ucode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vax_ucode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
