
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ucode/control_store.cc" "src/ucode/CMakeFiles/vax_ucode.dir/control_store.cc.o" "gcc" "src/ucode/CMakeFiles/vax_ucode.dir/control_store.cc.o.d"
  "/root/repo/src/ucode/uops.cc" "src/ucode/CMakeFiles/vax_ucode.dir/uops.cc.o" "gcc" "src/ucode/CMakeFiles/vax_ucode.dir/uops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/vax_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vax_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
