# Empty compiler generated dependencies file for vax_ucode.
# This may be replaced when dependencies are built.
