# Empty compiler generated dependencies file for vax_mem.
# This may be replaced when dependencies are built.
