file(REMOVE_RECURSE
  "CMakeFiles/vax_mem.dir/cache.cc.o"
  "CMakeFiles/vax_mem.dir/cache.cc.o.d"
  "CMakeFiles/vax_mem.dir/mem_system.cc.o"
  "CMakeFiles/vax_mem.dir/mem_system.cc.o.d"
  "CMakeFiles/vax_mem.dir/phys_mem.cc.o"
  "CMakeFiles/vax_mem.dir/phys_mem.cc.o.d"
  "CMakeFiles/vax_mem.dir/tb.cc.o"
  "CMakeFiles/vax_mem.dir/tb.cc.o.d"
  "libvax_mem.a"
  "libvax_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vax_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
