file(REMOVE_RECURSE
  "libvax_mem.a"
)
