# Empty dependencies file for vax_support.
# This may be replaced when dependencies are built.
