file(REMOVE_RECURSE
  "libvax_support.a"
)
