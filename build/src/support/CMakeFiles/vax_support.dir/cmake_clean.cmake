file(REMOVE_RECURSE
  "CMakeFiles/vax_support.dir/logging.cc.o"
  "CMakeFiles/vax_support.dir/logging.cc.o.d"
  "CMakeFiles/vax_support.dir/random.cc.o"
  "CMakeFiles/vax_support.dir/random.cc.o.d"
  "CMakeFiles/vax_support.dir/table.cc.o"
  "CMakeFiles/vax_support.dir/table.cc.o.d"
  "libvax_support.a"
  "libvax_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vax_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
