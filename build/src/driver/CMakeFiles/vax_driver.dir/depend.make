# Empty dependencies file for vax_driver.
# This may be replaced when dependencies are built.
