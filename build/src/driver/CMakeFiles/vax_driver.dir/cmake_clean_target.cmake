file(REMOVE_RECURSE
  "libvax_driver.a"
)
