file(REMOVE_RECURSE
  "CMakeFiles/vax_driver.dir/sim_pool.cc.o"
  "CMakeFiles/vax_driver.dir/sim_pool.cc.o.d"
  "libvax_driver.a"
  "libvax_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vax_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
