# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("arch")
subdirs("mem")
subdirs("ucode")
subdirs("cpu")
subdirs("os")
subdirs("upc")
subdirs("workload")
subdirs("driver")
