file(REMOVE_RECURSE
  "libvax_upc.a"
)
