file(REMOVE_RECURSE
  "CMakeFiles/vax_upc.dir/analyzer.cc.o"
  "CMakeFiles/vax_upc.dir/analyzer.cc.o.d"
  "CMakeFiles/vax_upc.dir/hist_io.cc.o"
  "CMakeFiles/vax_upc.dir/hist_io.cc.o.d"
  "CMakeFiles/vax_upc.dir/monitor.cc.o"
  "CMakeFiles/vax_upc.dir/monitor.cc.o.d"
  "libvax_upc.a"
  "libvax_upc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vax_upc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
