# Empty dependencies file for vax_upc.
# This may be replaced when dependencies are built.
