file(REMOVE_RECURSE
  "libvax_arch.a"
)
