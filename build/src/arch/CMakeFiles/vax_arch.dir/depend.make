# Empty dependencies file for vax_arch.
# This may be replaced when dependencies are built.
