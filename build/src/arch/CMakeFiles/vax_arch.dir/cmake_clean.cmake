file(REMOVE_RECURSE
  "CMakeFiles/vax_arch.dir/assembler.cc.o"
  "CMakeFiles/vax_arch.dir/assembler.cc.o.d"
  "CMakeFiles/vax_arch.dir/decimal.cc.o"
  "CMakeFiles/vax_arch.dir/decimal.cc.o.d"
  "CMakeFiles/vax_arch.dir/disasm.cc.o"
  "CMakeFiles/vax_arch.dir/disasm.cc.o.d"
  "CMakeFiles/vax_arch.dir/ffloat.cc.o"
  "CMakeFiles/vax_arch.dir/ffloat.cc.o.d"
  "CMakeFiles/vax_arch.dir/opcodes.cc.o"
  "CMakeFiles/vax_arch.dir/opcodes.cc.o.d"
  "CMakeFiles/vax_arch.dir/specifiers.cc.o"
  "CMakeFiles/vax_arch.dir/specifiers.cc.o.d"
  "libvax_arch.a"
  "libvax_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vax_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
