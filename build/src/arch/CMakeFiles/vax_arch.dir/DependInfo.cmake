
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/assembler.cc" "src/arch/CMakeFiles/vax_arch.dir/assembler.cc.o" "gcc" "src/arch/CMakeFiles/vax_arch.dir/assembler.cc.o.d"
  "/root/repo/src/arch/decimal.cc" "src/arch/CMakeFiles/vax_arch.dir/decimal.cc.o" "gcc" "src/arch/CMakeFiles/vax_arch.dir/decimal.cc.o.d"
  "/root/repo/src/arch/disasm.cc" "src/arch/CMakeFiles/vax_arch.dir/disasm.cc.o" "gcc" "src/arch/CMakeFiles/vax_arch.dir/disasm.cc.o.d"
  "/root/repo/src/arch/ffloat.cc" "src/arch/CMakeFiles/vax_arch.dir/ffloat.cc.o" "gcc" "src/arch/CMakeFiles/vax_arch.dir/ffloat.cc.o.d"
  "/root/repo/src/arch/opcodes.cc" "src/arch/CMakeFiles/vax_arch.dir/opcodes.cc.o" "gcc" "src/arch/CMakeFiles/vax_arch.dir/opcodes.cc.o.d"
  "/root/repo/src/arch/specifiers.cc" "src/arch/CMakeFiles/vax_arch.dir/specifiers.cc.o" "gcc" "src/arch/CMakeFiles/vax_arch.dir/specifiers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vax_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
