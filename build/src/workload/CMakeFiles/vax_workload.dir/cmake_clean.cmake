file(REMOVE_RECURSE
  "CMakeFiles/vax_workload.dir/codegen.cc.o"
  "CMakeFiles/vax_workload.dir/codegen.cc.o.d"
  "CMakeFiles/vax_workload.dir/experiments.cc.o"
  "CMakeFiles/vax_workload.dir/experiments.cc.o.d"
  "CMakeFiles/vax_workload.dir/profile.cc.o"
  "CMakeFiles/vax_workload.dir/profile.cc.o.d"
  "libvax_workload.a"
  "libvax_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vax_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
