# Empty compiler generated dependencies file for vax_workload.
# This may be replaced when dependencies are built.
