file(REMOVE_RECURSE
  "libvax_workload.a"
)
