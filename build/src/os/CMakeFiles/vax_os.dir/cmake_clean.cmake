file(REMOVE_RECURSE
  "CMakeFiles/vax_os.dir/vms.cc.o"
  "CMakeFiles/vax_os.dir/vms.cc.o.d"
  "libvax_os.a"
  "libvax_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vax_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
