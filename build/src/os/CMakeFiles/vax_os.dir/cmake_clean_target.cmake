file(REMOVE_RECURSE
  "libvax_os.a"
)
