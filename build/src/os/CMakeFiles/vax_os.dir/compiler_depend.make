# Empty compiler generated dependencies file for vax_os.
# This may be replaced when dependencies are built.
