# Empty compiler generated dependencies file for timesharing_characterization.
# This may be replaced when dependencies are built.
