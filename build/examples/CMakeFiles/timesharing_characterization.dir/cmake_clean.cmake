file(REMOVE_RECURSE
  "CMakeFiles/timesharing_characterization.dir/timesharing_characterization.cpp.o"
  "CMakeFiles/timesharing_characterization.dir/timesharing_characterization.cpp.o.d"
  "timesharing_characterization"
  "timesharing_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timesharing_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
