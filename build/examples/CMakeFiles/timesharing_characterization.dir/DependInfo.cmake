
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/timesharing_characterization.cpp" "examples/CMakeFiles/timesharing_characterization.dir/timesharing_characterization.cpp.o" "gcc" "examples/CMakeFiles/timesharing_characterization.dir/timesharing_characterization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/vax_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vax_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/vax_os.dir/DependInfo.cmake"
  "/root/repo/build/src/upc/CMakeFiles/vax_upc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vax_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ucode/CMakeFiles/vax_ucode.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vax_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vax_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vax_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
