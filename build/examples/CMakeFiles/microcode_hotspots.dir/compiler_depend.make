# Empty compiler generated dependencies file for microcode_hotspots.
# This may be replaced when dependencies are built.
