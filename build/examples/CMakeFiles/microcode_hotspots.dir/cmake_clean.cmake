file(REMOVE_RECURSE
  "CMakeFiles/microcode_hotspots.dir/microcode_hotspots.cpp.o"
  "CMakeFiles/microcode_hotspots.dir/microcode_hotspots.cpp.o.d"
  "microcode_hotspots"
  "microcode_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microcode_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
