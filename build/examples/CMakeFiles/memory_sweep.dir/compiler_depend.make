# Empty compiler generated dependencies file for memory_sweep.
# This may be replaced when dependencies are built.
