file(REMOVE_RECURSE
  "CMakeFiles/memory_sweep.dir/memory_sweep.cpp.o"
  "CMakeFiles/memory_sweep.dir/memory_sweep.cpp.o.d"
  "memory_sweep"
  "memory_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
