file(REMOVE_RECURSE
  "CMakeFiles/histogram_database.dir/histogram_database.cpp.o"
  "CMakeFiles/histogram_database.dir/histogram_database.cpp.o.d"
  "histogram_database"
  "histogram_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
