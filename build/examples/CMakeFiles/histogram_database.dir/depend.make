# Empty dependencies file for histogram_database.
# This may be replaced when dependencies are built.
