# Empty dependencies file for upc780_tests.
# This may be replaced when dependencies are built.
