
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arch.cc" "tests/CMakeFiles/upc780_tests.dir/test_arch.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_arch.cc.o.d"
  "/root/repo/tests/test_assembler_edge.cc" "tests/CMakeFiles/upc780_tests.dir/test_assembler_edge.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_assembler_edge.cc.o.d"
  "/root/repo/tests/test_cpu_basic.cc" "tests/CMakeFiles/upc780_tests.dir/test_cpu_basic.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_cpu_basic.cc.o.d"
  "/root/repo/tests/test_disk.cc" "tests/CMakeFiles/upc780_tests.dir/test_disk.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_disk.cc.o.d"
  "/root/repo/tests/test_driver.cc" "tests/CMakeFiles/upc780_tests.dir/test_driver.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_driver.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/upc780_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_instructions.cc" "tests/CMakeFiles/upc780_tests.dir/test_instructions.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_instructions.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/upc780_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_monitor_analyzer.cc" "tests/CMakeFiles/upc780_tests.dir/test_monitor_analyzer.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_monitor_analyzer.cc.o.d"
  "/root/repo/tests/test_opcode_sweep.cc" "tests/CMakeFiles/upc780_tests.dir/test_opcode_sweep.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_opcode_sweep.cc.o.d"
  "/root/repo/tests/test_os.cc" "tests/CMakeFiles/upc780_tests.dir/test_os.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_os.cc.o.d"
  "/root/repo/tests/test_os_services.cc" "tests/CMakeFiles/upc780_tests.dir/test_os_services.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_os_services.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/upc780_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_timing.cc" "tests/CMakeFiles/upc780_tests.dir/test_timing.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_timing.cc.o.d"
  "/root/repo/tests/test_tracer.cc" "tests/CMakeFiles/upc780_tests.dir/test_tracer.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_tracer.cc.o.d"
  "/root/repo/tests/test_uops.cc" "tests/CMakeFiles/upc780_tests.dir/test_uops.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_uops.cc.o.d"
  "/root/repo/tests/test_vm.cc" "tests/CMakeFiles/upc780_tests.dir/test_vm.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_vm.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/upc780_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/upc780_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/vax_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vax_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/vax_os.dir/DependInfo.cmake"
  "/root/repo/build/src/upc/CMakeFiles/vax_upc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vax_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ucode/CMakeFiles/vax_ucode.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vax_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vax_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vax_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
