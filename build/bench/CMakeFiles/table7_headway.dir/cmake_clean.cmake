file(REMOVE_RECURSE
  "CMakeFiles/table7_headway.dir/table7_headway.cc.o"
  "CMakeFiles/table7_headway.dir/table7_headway.cc.o.d"
  "table7_headway"
  "table7_headway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_headway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
