# Empty dependencies file for table7_headway.
# This may be replaced when dependencies are built.
