# Empty compiler generated dependencies file for impl_events.
# This may be replaced when dependencies are built.
