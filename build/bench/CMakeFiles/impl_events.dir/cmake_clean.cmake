file(REMOVE_RECURSE
  "CMakeFiles/impl_events.dir/impl_events.cc.o"
  "CMakeFiles/impl_events.dir/impl_events.cc.o.d"
  "impl_events"
  "impl_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impl_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
