file(REMOVE_RECURSE
  "CMakeFiles/ablation_decode_overlap.dir/ablation_decode_overlap.cc.o"
  "CMakeFiles/ablation_decode_overlap.dir/ablation_decode_overlap.cc.o.d"
  "ablation_decode_overlap"
  "ablation_decode_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decode_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
