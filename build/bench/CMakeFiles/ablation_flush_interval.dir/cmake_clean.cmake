file(REMOVE_RECURSE
  "CMakeFiles/ablation_flush_interval.dir/ablation_flush_interval.cc.o"
  "CMakeFiles/ablation_flush_interval.dir/ablation_flush_interval.cc.o.d"
  "ablation_flush_interval"
  "ablation_flush_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flush_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
