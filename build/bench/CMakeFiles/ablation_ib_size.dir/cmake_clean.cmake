file(REMOVE_RECURSE
  "CMakeFiles/ablation_ib_size.dir/ablation_ib_size.cc.o"
  "CMakeFiles/ablation_ib_size.dir/ablation_ib_size.cc.o.d"
  "ablation_ib_size"
  "ablation_ib_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ib_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
