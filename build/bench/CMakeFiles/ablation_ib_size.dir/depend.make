# Empty dependencies file for ablation_ib_size.
# This may be replaced when dependencies are built.
