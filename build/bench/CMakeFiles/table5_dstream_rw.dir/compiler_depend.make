# Empty compiler generated dependencies file for table5_dstream_rw.
# This may be replaced when dependencies are built.
