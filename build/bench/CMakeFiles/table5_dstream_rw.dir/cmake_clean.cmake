file(REMOVE_RECURSE
  "CMakeFiles/table5_dstream_rw.dir/table5_dstream_rw.cc.o"
  "CMakeFiles/table5_dstream_rw.dir/table5_dstream_rw.cc.o.d"
  "table5_dstream_rw"
  "table5_dstream_rw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_dstream_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
