# Empty dependencies file for table9_group_cycles.
# This may be replaced when dependencies are built.
