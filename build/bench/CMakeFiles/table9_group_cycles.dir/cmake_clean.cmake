file(REMOVE_RECURSE
  "CMakeFiles/table9_group_cycles.dir/table9_group_cycles.cc.o"
  "CMakeFiles/table9_group_cycles.dir/table9_group_cycles.cc.o.d"
  "table9_group_cycles"
  "table9_group_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_group_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
