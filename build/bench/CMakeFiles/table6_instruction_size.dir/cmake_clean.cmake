file(REMOVE_RECURSE
  "CMakeFiles/table6_instruction_size.dir/table6_instruction_size.cc.o"
  "CMakeFiles/table6_instruction_size.dir/table6_instruction_size.cc.o.d"
  "table6_instruction_size"
  "table6_instruction_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_instruction_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
