# Empty compiler generated dependencies file for table6_instruction_size.
# This may be replaced when dependencies are built.
