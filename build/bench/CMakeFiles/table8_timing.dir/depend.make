# Empty dependencies file for table8_timing.
# This may be replaced when dependencies are built.
