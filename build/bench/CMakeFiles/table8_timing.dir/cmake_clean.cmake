file(REMOVE_RECURSE
  "CMakeFiles/table8_timing.dir/table8_timing.cc.o"
  "CMakeFiles/table8_timing.dir/table8_timing.cc.o.d"
  "table8_timing"
  "table8_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
