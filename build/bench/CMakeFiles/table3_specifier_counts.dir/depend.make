# Empty dependencies file for table3_specifier_counts.
# This may be replaced when dependencies are built.
