file(REMOVE_RECURSE
  "CMakeFiles/table3_specifier_counts.dir/table3_specifier_counts.cc.o"
  "CMakeFiles/table3_specifier_counts.dir/table3_specifier_counts.cc.o.d"
  "table3_specifier_counts"
  "table3_specifier_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_specifier_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
