file(REMOVE_RECURSE
  "CMakeFiles/table2_pc_changing.dir/table2_pc_changing.cc.o"
  "CMakeFiles/table2_pc_changing.dir/table2_pc_changing.cc.o.d"
  "table2_pc_changing"
  "table2_pc_changing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pc_changing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
