# Empty compiler generated dependencies file for table2_pc_changing.
# This may be replaced when dependencies are built.
