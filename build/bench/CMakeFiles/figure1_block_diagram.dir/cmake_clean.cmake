file(REMOVE_RECURSE
  "CMakeFiles/figure1_block_diagram.dir/figure1_block_diagram.cc.o"
  "CMakeFiles/figure1_block_diagram.dir/figure1_block_diagram.cc.o.d"
  "figure1_block_diagram"
  "figure1_block_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_block_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
