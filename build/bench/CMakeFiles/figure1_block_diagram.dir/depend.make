# Empty dependencies file for figure1_block_diagram.
# This may be replaced when dependencies are built.
