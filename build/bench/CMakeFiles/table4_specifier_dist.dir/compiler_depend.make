# Empty compiler generated dependencies file for table4_specifier_dist.
# This may be replaced when dependencies are built.
