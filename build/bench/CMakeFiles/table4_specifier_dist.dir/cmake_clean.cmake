file(REMOVE_RECURSE
  "CMakeFiles/table4_specifier_dist.dir/table4_specifier_dist.cc.o"
  "CMakeFiles/table4_specifier_dist.dir/table4_specifier_dist.cc.o.d"
  "table4_specifier_dist"
  "table4_specifier_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_specifier_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
