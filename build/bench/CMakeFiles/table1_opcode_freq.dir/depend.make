# Empty dependencies file for table1_opcode_freq.
# This may be replaced when dependencies are built.
