file(REMOVE_RECURSE
  "CMakeFiles/table1_opcode_freq.dir/table1_opcode_freq.cc.o"
  "CMakeFiles/table1_opcode_freq.dir/table1_opcode_freq.cc.o.d"
  "table1_opcode_freq"
  "table1_opcode_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_opcode_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
