/**
 * @file
 * Observability tests: the stats registry (registration, lookup,
 * deterministic dumps, CSV/JSON rendering), the trace channels
 * (runtime enable/disable, buffering sinks, flag parsing), and the
 * pool telemetry (monotonic aggregates, Chrome trace export).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/sim_pool.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "tests/sim_test_util.hh"
#include "workload/experiments.hh"
#include "workload/profile.hh"

namespace vax::test
{

namespace
{

constexpr uint64_t kCycles = 150'000;

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "upc780_stats_" + tag;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Restore the process-wide trace mask when a test is done with it. */
struct ScopedTraceMask
{
    uint32_t saved = trace::g_mask;
    ~ScopedTraceMask() { trace::g_mask = saved; }
};

} // anonymous namespace

// ===================== registry basics =====================

TEST(StatsRegistry, RegisterAndLookup)
{
    stats::Registry r;
    uint64_t counter = 41;
    r.addScalar("cpu.cycles", "machine cycles", &counter);
    r.addScalar("cpu.twice", "computed scalar",
                [&counter] { return counter * 2; });
    r.addFormula("cpu.ratio", "a ratio",
                 [&counter] { return counter / 2.0; });
    r.addVector("cpu.modes", "cycles by mode",
                {{"kernel", &counter}, {"user", &counter}});

    EXPECT_EQ(r.size(), 5u);
    ASSERT_NE(r.find("cpu.cycles"), nullptr);
    EXPECT_EQ(r.find("cpu.cycles")->asScalar(), 41u);
    EXPECT_EQ(r.find("cpu.twice")->asScalar(), 82u);
    EXPECT_DOUBLE_EQ(r.find("cpu.ratio")->asDouble(), 20.5);
    ASSERT_NE(r.find("cpu.modes.kernel"), nullptr);
    EXPECT_EQ(r.find("cpu.modes.user")->asScalar(), 41u);
    EXPECT_EQ(r.find("absent"), nullptr);

    // A dump always reflects the live counter, not a snapshot.
    counter = 100;
    EXPECT_EQ(r.find("cpu.cycles")->asScalar(), 100u);
}

TEST(StatsRegistry, DuplicateNamePanics)
{
    stats::Registry r;
    uint64_t c = 0;
    r.addScalar("x", "", &c);
    EXPECT_DEATH(r.addScalar("x", "", &c), "duplicate");
}

TEST(StatsRegistry, DumpFormats)
{
    stats::Registry r;
    uint64_t c = 7;
    r.addScalar("b.count", "a counter, with comma", &c);
    r.addFormula("a.rate", "a \"rate\"", [] { return 0.25; });

    // Text: name-sorted, aligned, described.
    std::string text = r.dumpText();
    EXPECT_NE(text.find("a.rate"), std::string::npos);
    EXPECT_LT(text.find("a.rate"), text.find("b.count"));
    EXPECT_NE(text.find("# a counter, with comma"),
              std::string::npos);

    // CSV: header plus one row per stat, quoted descriptions.
    std::string csv = r.dumpCsv();
    EXPECT_NE(csv.find("name,value,desc\n"), std::string::npos);
    EXPECT_NE(csv.find("b.count,7,\"a counter, with comma\"\n"),
              std::string::npos);

    // JSON: escaped quotes, parseable values.
    std::string json = r.dumpJson();
    EXPECT_NE(json.find("\"name\": \"a.rate\", \"value\": 0.25"),
              std::string::npos);
    EXPECT_NE(json.find("a \\\"rate\\\""), std::string::npos);
}

TEST(StatsRegistry, SaveRoundTrip)
{
    stats::Registry r;
    uint64_t c = 123456789;
    r.addScalar("deep.nested.counter", "", &c);
    std::string path = tempPath("roundtrip.json");
    ASSERT_TRUE(r.saveJson(path));
    EXPECT_EQ(slurp(path), r.dumpJson());
    std::string csv_path = tempPath("roundtrip.csv");
    ASSERT_TRUE(r.saveCsv(csv_path));
    EXPECT_EQ(slurp(csv_path), r.dumpCsv());
    std::remove(path.c_str());
    std::remove(csv_path.c_str());
}

TEST(StatsRegistry, ParseStatsJsonFlag)
{
    const char *argv_in[] = {"prog", "--stats-json", "out.json",
                             "other", "--stats-json=two.json",
                             nullptr};
    char *argv[6];
    for (int i = 0; i < 5; ++i)
        argv[i] = const_cast<char *>(argv_in[i]);
    argv[5] = nullptr;
    int argc = 5;
    std::string path = stats::parseStatsJsonFlag(&argc, argv);
    EXPECT_EQ(path, "two.json"); // last flag wins
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "other");
}

// ===================== machine mirroring =====================

TEST(StatsRegistry, MachineRegistrationCoversSubsystems)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Operand::imm(40), Operand::reg(R3)});
    a.label("l");
    a.instr(op::SOBGTR, {Operand::reg(R3), Operand::branch("l")});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());

    stats::Registry r;
    m.cpu->regStats(r, "cpu");
    m.monitor.regStats(r, "cpu.upc");

    // One live registry spanning CPU, memory subsystem and monitor.
    ASSERT_NE(r.find("cpu.cycles"), nullptr);
    EXPECT_EQ(r.find("cpu.cycles")->asScalar(), m.cpu->cycles());
    EXPECT_EQ(r.find("cpu.instructions")->asScalar(),
              m.cpu->hw().instructions);
    ASSERT_NE(r.find("cpu.mem.cache.readRefsI"), nullptr);
    ASSERT_NE(r.find("cpu.mem.tb.lookupsD"), nullptr);
    ASSERT_NE(r.find("cpu.mem.wbuf.writesAccepted"), nullptr);
    ASSERT_NE(r.find("cpu.mem.sbi.transactions"), nullptr);
    EXPECT_EQ(r.find("cpu.upc.cycles")->asScalar(),
              m.monitor.histogram().cycles());
    EXPECT_GT(r.find("cpu.cpi")->asDouble(), 1.0);
}

// ===================== dump determinism =====================

TEST(StatsDeterminism, SameSeedSameJson)
{
    WorkloadProfile prof = allProfiles()[0];
    ExperimentResult r1 = runExperiment(prof, kCycles);
    ExperimentResult r2 = runExperiment(prof, kCycles);

    stats::Registry reg1, reg2;
    r1.hw.regStats(reg1, "sim");
    r1.hist.regStats(reg1, "sim.upc");
    r2.hw.regStats(reg2, "sim");
    r2.hist.regStats(reg2, "sim.upc");

    EXPECT_EQ(reg1.dumpJson(), reg2.dumpJson());
    EXPECT_EQ(reg1.dumpCsv(), reg2.dumpCsv());
    EXPECT_EQ(reg1.dumpText(), reg2.dumpText());
}

TEST(StatsDeterminism, SerialAndPooledDumpsAreByteIdentical)
{
    std::vector<SimJob> jobs = compositeJobs(kCycles);
    CompositeResult serial = SimPool(1).runComposite(jobs);
    CompositeResult pooled = SimPool(4).runComposite(jobs);

    stats::Registry reg_s, reg_p;
    registerCompositeStats(reg_s, serial);
    registerCompositeStats(reg_p, pooled);

    EXPECT_EQ(reg_s.size(), reg_p.size());
    // Wall-clock stays out of the registry, so the full dump -- per
    // part and composite -- must match byte for byte.
    EXPECT_EQ(reg_s.dumpJson(), reg_p.dumpJson());
}

// ===================== trace channels =====================

TEST(TraceChannels, EnableDisable)
{
    ScopedTraceMask restore;
    trace::disableAll();
    EXPECT_FALSE(trace::anyEnabled());
    trace::enable(trace::Channel::Cache);
    EXPECT_TRUE(trace::enabled(trace::Channel::Cache));
    EXPECT_FALSE(trace::enabled(trace::Channel::Tb));
    trace::disable(trace::Channel::Cache);
    EXPECT_FALSE(trace::anyEnabled());

    EXPECT_TRUE(trace::enableList("cache,tb"));
    EXPECT_TRUE(trace::enabled(trace::Channel::Cache));
    EXPECT_TRUE(trace::enabled(trace::Channel::Tb));
    trace::disableAll();
    EXPECT_TRUE(trace::enableList("all"));
    EXPECT_TRUE(trace::enabled(trace::Channel::Pool));
    trace::disableAll();
    EXPECT_FALSE(trace::enableList("nonsense"));
}

TEST(TraceChannels, EmitGoesToThreadSinkWithCycleStamp)
{
    ScopedTraceMask restore;
    trace::disableAll();
    trace::BufferSink buf;
    trace::ScopedSink scoped(&buf);

    // Disabled channel: the macro must not emit.
    TRACE(Cache, "should not appear %d", 1);
    EXPECT_TRUE(buf.text().empty());

    trace::enable(trace::Channel::Cache);
    uint64_t cycle = 1234;
    trace::setCycleCounter(&cycle);
    TRACE(Cache, "read miss pa=%06x", 0x1040u);
    trace::setCycleCounter(nullptr);
    EXPECT_EQ(buf.text(), "1234:cache: read miss pa=001040\n");
}

TEST(TraceChannels, MachineEmitsCacheLines)
{
    ScopedTraceMask restore;
    trace::disableAll();
    trace::BufferSink buf;
    {
        trace::ScopedSink scoped(&buf);
        trace::enableList("cache");
        BareMachine m;
        auto &a = m.asmblr;
        a.instr(op::MOVL, {Operand::imm(7), Operand::reg(R1)});
        a.instr(op::HALT);
        ASSERT_TRUE(m.run());
    }
    // Every line is cycle-stamped "N:cache: ...".
    EXPECT_NE(buf.text().find(":cache: "), std::string::npos);
    std::istringstream lines(buf.text());
    std::string line;
    while (std::getline(lines, line))
        EXPECT_NE(line.find(":cache: "), std::string::npos) << line;
}

TEST(TraceChannels, ParseTraceFlagStripsArgv)
{
    ScopedTraceMask restore;
    trace::disableAll();
    const char *argv_in[] = {"prog", "--trace", "tb", "keep",
                             "--trace=os", nullptr};
    char *argv[6];
    for (int i = 0; i < 5; ++i)
        argv[i] = const_cast<char *>(argv_in[i]);
    argv[5] = nullptr;
    int argc = 5;
    trace::parseTraceFlag(&argc, argv);
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "keep");
    EXPECT_TRUE(trace::enabled(trace::Channel::Tb));
    EXPECT_TRUE(trace::enabled(trace::Channel::Os));
    EXPECT_FALSE(trace::enabled(trace::Channel::Cache));
}

// ===================== pool telemetry =====================

TEST(PoolTelemetry, AggregateIsMonotonic)
{
    std::vector<SimJob> jobs = compositeJobs(20'000);
    std::vector<ExperimentResult> results = SimPool(2).run(jobs);
    PoolTelemetry tele = computeTelemetry(results);

    ASSERT_EQ(tele.jobs.size(), jobs.size());
    double max_wall = 0;
    uint64_t cycles = 0;
    for (const auto &j : tele.jobs) {
        EXPECT_GE(j.wallSeconds, 0.0);
        EXPECT_GE(j.startSeconds, 0.0);
        EXPECT_LT(j.worker, 2u);
        max_wall = std::max(max_wall, j.wallSeconds);
        cycles += j.simCycles;
    }
    // The aggregate span covers every job.
    EXPECT_GE(tele.wallSeconds, max_wall);
    EXPECT_EQ(tele.simCycles, cycles);
    EXPECT_GT(tele.instructions, 0u);
    if (tele.wallSeconds > 0) {
        EXPECT_GT(tele.cyclesPerSecond(), 0.0);
    }
    EXPECT_FALSE(tele.summary().empty());
}

TEST(PoolTelemetry, ChromeTraceExport)
{
    std::vector<SimJob> jobs = compositeJobs(20'000);
    std::vector<ExperimentResult> results = SimPool(2).run(jobs);
    std::string path = tempPath("timeline.json");
    ASSERT_TRUE(writeChromeTrace(path, results));
    std::string text = slurp(path);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    for (const auto &r : results)
        EXPECT_NE(text.find("\"name\":\"" + r.name + "\""),
                  std::string::npos);
    std::remove(path.c_str());
}

TEST(PoolTelemetry, PooledTraceLinesDoNotInterleave)
{
    // With tracing on, each pooled job buffers its lines and flushes
    // once; within this test we only assert the pool channel works
    // end to end under threads (TSan covers the data-race side).
    ScopedTraceMask restore;
    trace::disableAll();
    trace::enableList("pool");
    std::vector<SimJob> jobs = compositeJobs(5'000);
    std::vector<ExperimentResult> results = SimPool(4).run(jobs);
    trace::disableAll();
    EXPECT_EQ(results.size(), jobs.size());
    for (const auto &r : results)
        EXPECT_GT(r.hw.counters.cycles, 0u);
}

} // namespace vax::test
