/**
 * @file
 * The static cycle-bound analyzer, exercised three ways: the
 * production ROM must bound clean, hand-built mini-ROMs must fire
 * exactly the diagnostic their planted defect belongs to (unannotated
 * micro-loop, no reachable exit, measurement outside bounds), and a
 * generated microbenchmark's dynamic cycle count must actually fall
 * inside the statically composed [bcc, wcc] envelope.
 */

#include <gtest/gtest.h>

#include "analysis/ubound.hh"
#include "arch/opcodes.hh"
#include "support/stats.hh"
#include "ucode/rom.hh"
#include "upc/ucharacterize.hh"
#include "workload/uchar_corpus.hh"

using namespace vax;

namespace
{

/** Minimal control store the bound analyzer accepts (same shape as
 *  ulint's MiniRom): every entry slot filled, every flow a short
 *  terminating word.  Tests graft loops or stalls onto one execute
 *  flow to get exact, hand-computable bounds. */
struct MiniRom
{
    ControlStore cs;
    MicroAssembler as{cs};

    UAddr
    word(Row row, const char *name, UFlow f,
         UMemKind mem = UMemKind::None, bool ib = false)
    {
        UAnnotation a;
        a.row = row;
        a.name = name;
        a.mem = mem;
        a.ibRequest = ib;
        return as.emit(a, std::move(f), [](Ebox &) {});
    }

    MiniRom()
    {
        EntryPoints &ep = cs.entries;
        ep.iid = word(Row::Decode, "IID", flowDispatch(),
                      UMemKind::None, true);
        ep.specWait[0] =
            word(Row::Spec1, "SPEC1.wait", flowDispatch());
        ep.specWait[1] =
            word(Row::Spec26, "SPEC26.wait", flowDispatch());
        ep.abort = word(Row::Abort, "ABORT", flowReserved());
        ep.tbMissD =
            word(Row::MemMgmt, "TB.d", flowTrapRet(), UMemKind::Read);
        ep.tbMissI =
            word(Row::MemMgmt, "TB.i", flowTrapRet(), UMemKind::Read);
        ep.alignRead = word(Row::MemMgmt, "ALIGN.r", flowTrapRet(),
                            UMemKind::Read);
        ep.alignWrite = word(Row::MemMgmt, "ALIGN.w", flowTrapRet(),
                             UMemKind::Write);
        ep.interrupt = word(Row::IntExcept, "INT", flowEnd());
        ep.exception = word(Row::IntExcept, "EXC", flowEnd());
        ep.machineCheck = word(Row::IntExcept, "MCHK", flowEnd());
        ep.indexPrefix[0] = word(Row::Spec1, "SPEC1.idx", flowSpec26());
        ep.indexPrefix[1] =
            word(Row::Spec26, "SPEC26.idx", flowSpec26());

        UAddr s1 = word(Row::Spec1, "SPEC1.any", flowDispatch());
        UAddr s26 = word(Row::Spec26, "SPEC26.any", flowDispatch());
        for (size_t m = 0;
             m < static_cast<size_t>(AddrMode::NumModes); ++m) {
            for (size_t c = 0;
                 c < static_cast<size_t>(SpecAccClass::NumClasses);
                 ++c) {
                ep.spec[m][0][c] = s1;
                ep.spec[m][1][c] = s26;
            }
        }

        UAddr ex = word(Row::ExecSimple, "EXEC.any", flowEnd());
        for (size_t f = 1;
             f < static_cast<size_t>(ExecFlow::NumFlows); ++f)
            ep.exec[f] = ex;
    }

    /** Point the Mov execute entry at a grafted flow. */
    void
    setMovExec(UAddr a)
    {
        cs.entries.exec[static_cast<size_t>(ExecFlow::Mov)] = a;
    }
};

const UFlowBound *
findFlow(const UBoundReport &rep, const std::string &name)
{
    for (const UFlowBound &f : rep.flows)
        if (f.name == name)
            return &f;
    return nullptr;
}

} // anonymous namespace

TEST(UBound, ProductionRomIsFullyBounded)
{
    ControlStore cs;
    buildMicrocodeRom(cs);
    UBoundReport rep = uboundAnalyze(cs);
    EXPECT_TRUE(rep.clean()) << rep.text();
    EXPECT_GT(rep.flows.size(), 20u);
    for (const UFlowBound &f : rep.flows) {
        EXPECT_TRUE(f.bounded) << f.name;
        EXPECT_GE(f.lo, 1u) << f.name;
        EXPECT_GE(f.hi, f.lo) << f.name;
    }
    // The ROM's annotated micro-loops (multiply/divide steps, string
    // moves, stack scans) must be visible as cyclic SCCs somewhere.
    uint32_t loops = 0;
    for (const UFlowBound &f : rep.flows)
        loops += f.loopSccs;
    EXPECT_GT(loops, 0u);
}

TEST(UBound, ReportsAreDeterministic)
{
    ControlStore cs1, cs2;
    buildMicrocodeRom(cs1);
    buildMicrocodeRom(cs2);
    UBoundReport a = uboundAnalyze(cs1);
    UBoundReport b = uboundAnalyze(cs2);
    EXPECT_EQ(a.text(), b.text());
    EXPECT_EQ(a.csv(), b.csv());
    EXPECT_EQ(a.json(), b.json());
}

TEST(UBound, MiniRomIsClean)
{
    MiniRom mini;
    UBoundReport rep = uboundAnalyze(mini.cs);
    EXPECT_TRUE(rep.clean()) << rep.text();
    const UFlowBound *iid = findFlow(rep, "iid");
    ASSERT_NE(iid, nullptr);
    EXPECT_EQ(iid->lo, 1u);
    // IID carries an IB request: ceiling is the word plus the refill
    // slack.
    EXPECT_EQ(iid->hi, 1u + UBoundParams{}.ibStallCeil);
}

TEST(UBound, UnannotatedLoopIsDiagnosed)
{
    MiniRom mini;
    ULabel top = mini.as.newLabel();
    mini.as.bind(top);
    UAddr head = mini.word(Row::ExecSimple, "MOV.spin",
                           flowTo(top).orEnd());
    mini.setMovExec(head);
    UBoundReport rep = uboundAnalyze(mini.cs);
    ASSERT_EQ(rep.countFor(UBoundCheck::UnboundedLoop), 1u)
        << rep.text();
    const UBoundDiag *diag = nullptr;
    for (const UBoundDiag &d : rep.diags)
        if (d.check == UBoundCheck::UnboundedLoop)
            diag = &d;
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->addr, head);
    EXPECT_EQ(diag->where, "exec:MOV");
    EXPECT_NE(diag->message.find("MOV.spin"), std::string::npos);
    const UFlowBound *f = findFlow(rep, "exec:MOV");
    ASSERT_NE(f, nullptr);
    EXPECT_FALSE(f->bounded);
    EXPECT_EQ(f->loopSccs, 1u);
}

TEST(UBound, AnnotatedLoopGetsExactBounds)
{
    MiniRom mini;
    ULabel top = mini.as.newLabel();
    mini.as.bind(top);
    UAddr head = mini.word(Row::ExecSimple, "MOV.step",
                           flowTo(top).orEnd().withLoopBound(4));
    mini.setMovExec(head);
    UBoundReport rep = uboundAnalyze(mini.cs);
    EXPECT_TRUE(rep.clean()) << rep.text();
    const UFlowBound *f = findFlow(rep, "exec:MOV");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->bounded);
    EXPECT_EQ(f->loopSccs, 1u);
    // Best case: fall out of the loop on the first pass.  Worst case:
    // the one-word body spins to its annotated bound.
    EXPECT_EQ(f->lo, 1u);
    EXPECT_EQ(f->hi, 4u);
}

TEST(UBound, MemoryWordCarriesTheStallCeiling)
{
    MiniRom mini;
    UAddr head = mini.word(Row::ExecSimple, "MOV.ld", flowFall(),
                           UMemKind::Read);
    mini.word(Row::ExecSimple, "MOV.done", flowEnd());
    mini.setMovExec(head);
    UBoundParams p;
    p.alignTraps = false; // isolate the raw stall ceiling
    UBoundReport rep = uboundAnalyze(mini.cs, p);
    EXPECT_TRUE(rep.clean()) << rep.text();
    const UFlowBound *f = findFlow(rep, "exec:MOV");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->lo, 2u);
    EXPECT_EQ(f->hi, 2u + p.readStallCeil);

    // With alignment traps on, the ceiling also pays the abort, the
    // read service (one read word: 1 + readStallCeil), the resume and
    // the re-issued stall.
    UBoundReport rep2 = uboundAnalyze(mini.cs);
    const UFlowBound *f2 = findFlow(rep2, "exec:MOV");
    ASSERT_NE(f2, nullptr);
    UBoundParams d;
    uint64_t svc = 1 + d.readStallCeil;
    EXPECT_EQ(f2->hi,
              2u + d.readStallCeil + 1 + svc + 1 + d.readStallCeil);
}

TEST(UBound, ExitlessFlowIsDiagnosed)
{
    MiniRom mini;
    ULabel top = mini.as.newLabel();
    mini.as.bind(top);
    UAddr head =
        mini.word(Row::ExecSimple, "MOV.noexit", flowTo(top));
    mini.setMovExec(head);
    UBoundReport rep = uboundAnalyze(mini.cs);
    ASSERT_EQ(rep.countFor(UBoundCheck::NoExit), 1u) << rep.text();
    const UFlowBound *f = findFlow(rep, "exec:MOV");
    ASSERT_NE(f, nullptr);
    EXPECT_FALSE(f->bounded);
}

TEST(UBound, MeasuredOutsideBoundsIsANamedDiagnostic)
{
    std::vector<UBoundDiag> diags;
    EXPECT_TRUE(uboundCheckMeasured("MOVL (Rn)", 25, 10, 40, &diags));
    EXPECT_TRUE(diags.empty());
    EXPECT_FALSE(uboundCheckMeasured("MOVL (Rn)", 50, 10, 40, &diags));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].check, UBoundCheck::Baseline);
    EXPECT_EQ(diags[0].where, "MOVL (Rn)");
    EXPECT_NE(diags[0].message.find("outside static bounds [10, 40]"),
              std::string::npos);
    EXPECT_FALSE(uboundCheckMeasured("MOVL (Rn)", 5, 10, 40, &diags));
    EXPECT_EQ(diags.size(), 2u);
}

TEST(UBound, InstrRangeValidatesItsInputs)
{
    ControlStore cs;
    buildMicrocodeRom(cs);
    UBoundAnalysis ub(cs);

    // MOVL Rn, Rn: two register specifiers.
    std::vector<UBoundAnalysis::SpecUse> two(2);
    auto r = ub.instrRange(0xD0, two);
    ASSERT_TRUE(r.valid);
    EXPECT_GE(r.lo, 3u); // IID + two specs + execute, at least
    EXPECT_GT(r.hi, r.lo);

    // Indexed specifier costs at least the base form.
    std::vector<UBoundAnalysis::SpecUse> idx(2);
    idx[0].mode = AddrMode::RegDeferred;
    idx[0].indexed = true;
    auto ri = ub.instrRange(0xD0, idx);
    ASSERT_TRUE(ri.valid);
    EXPECT_GT(ri.lo, r.lo);

    // Wrong specifier count and unimplemented opcodes are invalid.
    EXPECT_FALSE(ub.instrRange(0xD0, {}).valid);
    EXPECT_FALSE(ub.instrRange(0xFF, {}).valid);
}

TEST(UBound, DynamicRunFallsInsideStaticEnvelope)
{
    ControlStore cs;
    buildMicrocodeRom(cs);
    UBoundAnalysis ub(cs);

    UcharParams params;
    UcharSuiteOptions opts;
    opts.opcodeFilter = "MOVL";
    std::vector<UcharVariant> variants = ucharEnumerate(params, opts);
    ASSERT_FALSE(variants.empty());
    size_t checked = 0;
    for (const UcharVariant &v : variants) {
        if (!v.runnable)
            continue;
        UcharOutcome out = runUcharProgram(v.prog, params);
        if (!out.ok)
            continue;
        uint64_t lo = 0, hi = 0;
        bool valid = true;
        for (const UcharProfileEntry &e : v.prog.profile) {
            std::vector<UBoundAnalysis::SpecUse> specs;
            for (const UcharSpecUse &s : e.specs)
                specs.push_back({s.mode, s.indexed});
            auto r = ub.instrRange(e.opcode, specs);
            valid = valid && r.valid;
            lo += e.count * r.lo;
            hi += e.count * r.hi;
        }
        ASSERT_TRUE(valid) << v.op << " " << v.mode;
        std::vector<UBoundDiag> diags;
        EXPECT_TRUE(uboundCheckMeasured(v.op + " " + v.mode,
                                        out.run.cycles, lo, hi,
                                        &diags))
            << v.op << " " << v.mode << ": " << out.run.cycles
            << " not in [" << lo << ", " << hi << "]";
        ++checked;
    }
    EXPECT_GT(checked, 5u);
}

TEST(UBound, ProfileCountsSumToExpectedRetires)
{
    UcharParams params;
    UcharSuiteOptions opts;
    opts.opcodeFilter = "ADDL2,PUSHL";
    for (const UcharVariant &v : ucharEnumerate(params, opts)) {
        if (!v.runnable)
            continue;
        uint64_t sum = 0;
        for (const UcharProfileEntry &e : v.prog.profile)
            sum += e.count;
        EXPECT_EQ(sum, v.prog.expectedInstructions)
            << v.op << " " << v.mode;
    }
}

TEST(UBound, RowAttributionCoversTheRom)
{
    ControlStore cs;
    buildMicrocodeRom(cs);
    UBoundReport rep = uboundAnalyze(cs);
    uint32_t words = 0;
    for (const URowCost &rc : rep.rows)
        words += rc.words;
    // Every reachable word lands in exactly one Table 8 row; only the
    // reserved guard words stay out.
    EXPECT_GT(words, 0u);
    EXPECT_LE(words, cs.size());
    EXPECT_GE(words + 8, static_cast<uint32_t>(cs.size()));
    EXPECT_GT(rep.rows[static_cast<size_t>(Row::Decode)].ibWords, 0u);
}

TEST(UBound, RenderingsNameTheChecks)
{
    MiniRom mini;
    ULabel top = mini.as.newLabel();
    mini.as.bind(top);
    mini.setMovExec(mini.word(Row::ExecSimple, "MOV.spin",
                              flowTo(top).orEnd()));
    UBoundReport rep = uboundAnalyze(mini.cs);
    ASSERT_FALSE(rep.clean());
    std::string text = rep.text();
    EXPECT_NE(text.find("error: [unbounded-loop]"), std::string::npos)
        << text;
    EXPECT_NE(text.find("UNBOUNDED"), std::string::npos);
    std::string json = rep.json();
    EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
    EXPECT_NE(json.find("\"unbounded-loop\": 1"), std::string::npos);
    std::string csv = rep.csv();
    EXPECT_NE(csv.find("flow,entry,lo,hi,words,loops,bounded\n"),
              std::string::npos);
}

TEST(UBound, StatsSection)
{
    ControlStore cs;
    buildMicrocodeRom(cs);
    UBoundReport rep = uboundAnalyze(cs);
    stats::Registry reg;
    regUBoundStats(rep, reg);
    ASSERT_NE(reg.find("ubound.flows"), nullptr);
    EXPECT_EQ(reg.find("ubound.flows")->asScalar(), rep.flows.size());
    ASSERT_NE(reg.find("ubound.unbounded"), nullptr);
    EXPECT_EQ(reg.find("ubound.unbounded")->asScalar(), 0u);
    EXPECT_EQ(reg.find("ubound.diags"), nullptr); // clean: no section

    MiniRom mini;
    ULabel top = mini.as.newLabel();
    mini.as.bind(top);
    mini.setMovExec(mini.word(Row::ExecSimple, "MOV.spin",
                              flowTo(top).orEnd()));
    stats::Registry dirty;
    regUBoundStats(uboundAnalyze(mini.cs), dirty);
    ASSERT_NE(dirty.find("ubound.diags"), nullptr);
    EXPECT_GE(dirty.find("ubound.diags")->asScalar(), 1u);
    ASSERT_NE(dirty.find("ubound.unbounded-loop"), nullptr);
}

TEST(UBound, BoundsRoundTripThroughUcharJson)
{
    UcharReport rep;
    rep.calibration.cycles = 100;
    UcharRow row;
    row.op = "MOVL";
    row.mode = "Rn";
    row.run.cycles = 500;
    row.bcc = 400;
    row.wcc = 900;
    row.hasBounds = true;
    rep.rows.push_back(row);
    UcharRow bare;
    bare.op = "CLRL";
    bare.mode = "Rn";
    bare.run.cycles = 300;
    rep.rows.push_back(bare);

    std::string json = ucharJson(rep);
    UcharReport back;
    std::string err;
    ASSERT_TRUE(ucharParseJson(json, &back, &err)) << err;
    ASSERT_EQ(back.rows.size(), 2u);
    EXPECT_TRUE(back.rows[0].hasBounds);
    EXPECT_EQ(back.rows[0].bcc, 400u);
    EXPECT_EQ(back.rows[0].wcc, 900u);
    EXPECT_FALSE(back.rows[1].hasBounds);

    // Bounds are derived data: comparison must ignore them.
    UcharReport stripped = back;
    stripped.rows[0].hasBounds = false;
    stripped.rows[0].bcc = stripped.rows[0].wcc = 0;
    EXPECT_TRUE(ucharCompare(back, stripped).ok());

    stats::Registry reg;
    regUcharBounds(reg, "uchar.", back);
    ASSERT_NE(reg.find("uchar.bounds.rows"), nullptr);
    EXPECT_EQ(reg.find("uchar.bounds.rows")->asScalar(), 1u);
    ASSERT_NE(reg.find("uchar.bounds.violations"), nullptr);
    EXPECT_EQ(reg.find("uchar.bounds.violations")->asScalar(), 0u);
}
