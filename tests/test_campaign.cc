/**
 * @file
 * Campaign-layer acceptance tests.
 *
 * The correctness bar is the kill-drill identity: a campaign that
 * loses a shard to SIGKILL mid-chunk, and a campaign whose supervisor
 * is killed and then --resume'd, must both produce a stats dump
 * byte-identical to the uninterrupted run.  Around that sit the spool
 * primitives (tokens, claim-by-rename, backoff, heartbeats), the
 * fail-soft .result ingestion, the poison-job quarantine, and the
 * exit-2 flag-validation contract.
 *
 * The drill tests drive the real upc780_campaign binary (path baked
 * in as UPC780_CAMPAIGN_BIN, overridable by the environment variable
 * of the same name) so the fork/exec supervisor, the claim protocol
 * and the SIGKILL recovery run exactly as they do in production.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "driver/campaign.hh"
#include "driver/checkpoint.hh"
#include "driver/sim_pool.hh"
#include "support/snapshot.hh"
#include "workload/experiments.hh"
#include "workload/profile.hh"

using namespace vax;

namespace
{

/** Fresh scratch directory, pid-qualified so a discovered gtest case
 *  and its aggregate ctest entry can run concurrently under -j. */
std::string
scratchDir(const char *name)
{
    std::string dir = ::testing::TempDir() + "upc780_campaign_" +
        name + "_" + std::to_string(static_cast<long>(::getpid()));
    std::string cmd = "rm -rf '" + dir + "'";
    (void)!std::system(cmd.c_str());
    return dir;
}

/** The campaign binary under test. */
std::string
campaignBin()
{
    if (const char *env = std::getenv("UPC780_CAMPAIGN_BIN"))
        return env;
#ifdef UPC780_CAMPAIGN_BIN
    return UPC780_CAMPAIGN_BIN;
#else
    return "";
#endif
}

/** Run the campaign binary; @return the raw wait() status. */
int
runTool(const std::string &args)
{
    std::string cmd = "'" + campaignBin() + "' " + args +
        " > /dev/null 2>&1";
    return std::system(cmd.c_str());
}

/** The drill campaigns' shared geometry: small enough to finish in
 *  well under a second per run, chunked enough (6 chunks/job) that a
 *  mid-job SIGKILL always lands between checkpoints. */
std::string
drillArgs(const std::string &spool)
{
    return "--spool '" + spool + "' --shards 2 --cycles 90000 "
           "--checkpoint-interval 15000 --heartbeat-interval 0.2 "
           "--heartbeat-timeout 5 --backoff-base 0.05 "
           "--backoff-cap 0.2";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** The uninterrupted run's stats dump (computed once per process):
 *  the same job list through SimPool threads via --in-process, which
 *  the pool determinism tests already pin to the serial run. */
const std::string &
referenceStatsJson()
{
    static std::string bytes = [] {
        std::string dir = scratchDir("reference");
        std::string json = dir + ".json";
        int st = runTool(drillArgs(dir) + " --in-process "
                         "--stats-json '" + json + "'");
        EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);
        std::string b = slurp(json);
        EXPECT_FALSE(b.empty());
        return b;
    }();
    return bytes;
}

/** Build a mutable argv for CampaignConfig::parseFlags. */
struct Argv
{
    explicit Argv(std::initializer_list<const char *> args)
    {
        strings.emplace_back("upc780_campaign");
        for (const char *a : args)
            strings.emplace_back(a);
        for (std::string &s : strings)
            ptrs.push_back(s.data());
        ptrs.push_back(nullptr);
        argc = static_cast<int>(strings.size());
    }

    std::vector<std::string> strings;
    std::vector<char *> ptrs;
    int argc;

    CampaignConfig parse()
    {
        return CampaignConfig::parseFlags(&argc, ptrs.data());
    }
};

} // anonymous namespace

// ---------------------------------------------------------------
// Flag validation: usage + exit 2, never a different fleet.
// ---------------------------------------------------------------

TEST(CampaignFlags, GoodFlagsParse)
{
    Argv a({"--spool", "sp", "--shards", "3", "--cycles", "500000",
            "--replicas", "2", "--checkpoint-interval", "50000",
            "--heartbeat-interval", "0.5", "--heartbeat-timeout",
            "10", "--max-retries", "4", "--backoff-base", "0.1",
            "--backoff-cap", "2", "--stats-json", "out.json",
            "--resume"});
    CampaignConfig cfg = a.parse();
    EXPECT_EQ(cfg.spool, "sp");
    EXPECT_EQ(cfg.shards, 3u);
    EXPECT_EQ(cfg.cycles, 500'000u);
    EXPECT_EQ(cfg.replicas, 2u);
    EXPECT_EQ(cfg.intervalCycles, 50'000u);
    EXPECT_DOUBLE_EQ(cfg.heartbeatInterval, 0.5);
    EXPECT_DOUBLE_EQ(cfg.heartbeatTimeout, 10.0);
    EXPECT_EQ(cfg.maxAttempts, 4u);
    EXPECT_DOUBLE_EQ(cfg.backoffBase, 0.1);
    EXPECT_DOUBLE_EQ(cfg.backoffCap, 2.0);
    EXPECT_EQ(cfg.statsJsonPath, "out.json");
    EXPECT_TRUE(cfg.resume);
    EXPECT_FALSE(cfg.shardMode);
    EXPECT_EQ(a.argc, 1); // every flag consumed
}

TEST(CampaignFlags, ResumeWithoutSpoolExits2)
{
    Argv a({"--resume"});
    EXPECT_EXIT(a.parse(), ::testing::ExitedWithCode(2),
                "--resume needs --spool");
}

TEST(CampaignFlags, ZeroShardsExits2)
{
    Argv a({"--spool", "sp", "--shards", "0"});
    EXPECT_EXIT(a.parse(), ::testing::ExitedWithCode(2),
                "not a positive count");
}

TEST(CampaignFlags, HeartbeatTimeoutBelowIntervalExits2)
{
    Argv a({"--spool", "sp", "--heartbeat-interval", "5",
            "--heartbeat-timeout", "2"});
    EXPECT_EXIT(a.parse(), ::testing::ExitedWithCode(2),
                "must exceed --heartbeat-interval");
}

TEST(CampaignFlags, BackoffCapBelowBaseExits2)
{
    Argv a({"--spool", "sp", "--backoff-base", "4", "--backoff-cap",
            "1"});
    EXPECT_EXIT(a.parse(), ::testing::ExitedWithCode(2),
                "--backoff-cap");
}

TEST(CampaignFlags, UnknownArgumentExits2)
{
    Argv a({"--spool", "sp", "--bogus"});
    EXPECT_EXIT(a.parse(), ::testing::ExitedWithCode(2),
                "unrecognized argument");
}

TEST(CampaignFlags, ShardModeRequiresShardId)
{
    Argv a({"--spool", "sp", "--shard"});
    EXPECT_EXIT(a.parse(), ::testing::ExitedWithCode(2),
                "--shard requires --shard-id");
    Argv b({"--spool", "sp", "--shard-id", "1"});
    EXPECT_EXIT(b.parse(), ::testing::ExitedWithCode(2),
                "meaningless without --shard");
}

// ---------------------------------------------------------------
// Spool primitives.
// ---------------------------------------------------------------

TEST(CampaignSpool, TokenRoundTripAndDamage)
{
    std::string dir = scratchDir("token");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string path = dir + "/job000";

    JobToken t;
    t.attempts = 2;
    t.notBefore = 12345.5;
    t.lastError = "watchdog: no forward progress";
    ASSERT_TRUE(writeJobTokenFile(path, t));

    JobToken r;
    ASSERT_TRUE(readJobTokenFile(path, &r));
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_DOUBLE_EQ(r.notBefore, 12345.5);
    EXPECT_EQ(r.lastError, "watchdog: no forward progress");

    // A missing token reads false; a damaged one reads as defaults
    // (plus whatever parsed) -- retry bookkeeping never aborts.
    EXPECT_FALSE(readJobTokenFile(dir + "/nope", &r));
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("attempts 3\n\x01garbage\x02\n", f);
    std::fclose(f);
    ASSERT_TRUE(readJobTokenFile(path, &r));
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_DOUBLE_EQ(r.notBefore, 0.0);
}

TEST(CampaignSpool, ClaimByRenameIsExclusive)
{
    std::string dir = scratchDir("claim");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string todo = dir + "/job000";
    ASSERT_TRUE(writeJobTokenFile(todo, JobToken()));

    // First claimant wins; the loser's rename sees ENOENT and is a
    // clean "already taken", not an error.
    EXPECT_EQ(claimByRename(todo, dir + "/job000.shard0"),
              ClaimOutcome::Won);
    EXPECT_EQ(claimByRename(todo, dir + "/job000.shard1"),
              ClaimOutcome::Lost);
    EXPECT_TRUE(fileExists(dir + "/job000.shard0"));
    EXPECT_FALSE(fileExists(dir + "/job000.shard1"));
}

TEST(CampaignSpool, BackoffDoublesAndCaps)
{
    CampaignConfig cfg;
    cfg.backoffBase = 0.25;
    cfg.backoffCap = 1.5;
    EXPECT_DOUBLE_EQ(backoffSeconds(cfg, 1), 0.25);
    EXPECT_DOUBLE_EQ(backoffSeconds(cfg, 2), 0.5);
    EXPECT_DOUBLE_EQ(backoffSeconds(cfg, 3), 1.0);
    EXPECT_DOUBLE_EQ(backoffSeconds(cfg, 4), 1.5); // capped
    EXPECT_DOUBLE_EQ(backoffSeconds(cfg, 40), 1.5);
}

TEST(CampaignSpool, HeartbeatAge)
{
    std::string dir = scratchDir("hb");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string hb = dir + "/shard0.hb";
    EXPECT_LT(heartbeatAgeSeconds(hb), 0.0); // missing
    ASSERT_TRUE(heartbeatWrite(hb, 1234, 7, 3));
    double age = heartbeatAgeSeconds(hb);
    EXPECT_GE(age, 0.0);
    EXPECT_LT(age, 30.0); // fresh (generous bound for slow CI)
}

TEST(CampaignSpool, JobListIsDeterministicAcrossProcesses)
{
    CampaignConfig cfg;
    cfg.replicas = 2;
    cfg.cycles = 123'456;
    std::vector<SimJob> a = campaignJobs(cfg);
    std::vector<SimJob> b = campaignJobs(cfg);
    ASSERT_EQ(a.size(), 10u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].profile.name, b[i].profile.name);
        EXPECT_EQ(a[i].profile.seed, b[i].profile.seed);
        EXPECT_EQ(a[i].cycles, 123'456u);
    }
    // Replica 1 jobs are distinct experiments, not reruns.
    EXPECT_EQ(a[5].profile.name, a[0].profile.name + "#1");
    EXPECT_NE(a[5].profile.seed, a[0].profile.seed);
}

// ---------------------------------------------------------------
// Fail-soft .result ingestion (a SIGKILL can cut any write short).
// ---------------------------------------------------------------

TEST(CampaignResultIngestion, DamagedResultReadsAsUnfinished)
{
    std::string dir = scratchDir("ingest");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string path = dir + "/job000-x.result";

    ExperimentResult r = runExperiment(allProfiles()[0], 30'000);
    ASSERT_TRUE(writeResultFile(path, r));
    ExperimentResult back;
    ASSERT_TRUE(readResultFile(path, &back));
    EXPECT_EQ(back.name, r.name);

    // Truncation: the tail of the file never made it to disk.
    std::string bytes = slurp(path);
    ASSERT_GT(bytes.size(), 32u);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
    std::fclose(f);
    EXPECT_FALSE(readResultFile(path, &back)); // warned, not thrown
    EXPECT_THROW(readResultFileChecked(path, &back),
                 snap::SnapshotError);

    // CRC damage: one flipped byte mid-payload.
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    bytes[bytes.size() / 2] ^= 0x40;
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    EXPECT_FALSE(readResultFile(path, &back));

    // Absent stays a plain false.
    EXPECT_FALSE(readResultFile(dir + "/nope.result", &back));
}

// ---------------------------------------------------------------
// Crash drills against the real binary.
// ---------------------------------------------------------------

TEST(CampaignDrill, FleetMatchesInProcessByteForByte)
{
    ASSERT_FALSE(campaignBin().empty());
    std::string dir = scratchDir("fleet");
    std::string json = dir + ".json";
    int st = runTool(drillArgs(dir) + " --stats-json '" + json + "'");
    ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);
    EXPECT_EQ(slurp(json), referenceStatsJson());
}

TEST(CampaignDrill, KillDrillByteIdentity)
{
    ASSERT_FALSE(campaignBin().empty());
    // Shard 0 SIGKILLs itself two chunks into its first job; the
    // supervisor must reap it, reclaim the claim, respawn, and finish
    // with the uninterrupted run's exact stats dump.
    std::string dir = scratchDir("kill");
    std::string json = dir + ".json";
    int st = runTool(drillArgs(dir) +
                     " --drill-shard0-die-after-chunks 2 "
                     "--stats-json '" + json + "'");
    ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);
    EXPECT_EQ(slurp(json), referenceStatsJson());
}

TEST(CampaignDrill, SupervisorDeathResumeIdentity)
{
    ASSERT_FALSE(campaignBin().empty());
    // The whole fleet -- supervisor included -- loses power once two
    // results exist; --resume restarts from the manifest + .result +
    // .ckpt files and must land on the identical dump.
    std::string dir = scratchDir("resume");
    std::string json = dir + ".json";
    int st = runTool(drillArgs(dir) + " --drill-die-after-results 2 "
                     "--stats-json '" + json + "'");
    EXPECT_FALSE(WIFEXITED(st) && WEXITSTATUS(st) == 0); // died hard
    EXPECT_FALSE(fileExists(json));

    st = runTool(drillArgs(dir) + " --resume --stats-json '" + json +
                 "'");
    ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);
    EXPECT_EQ(slurp(json), referenceStatsJson());
}

TEST(CampaignDrill, PoisonJobQuarantinesAndCampaignSurvives)
{
    ASSERT_FALSE(campaignBin().empty());
    // Job 1 fails every attempt; after max-retries it must move to
    // quarantine/ and the campaign must still complete (exit 0) with
    // a renormalized survivor composite -- one poison job can cost
    // its own measurement, never the fleet's.
    std::string dir = scratchDir("poison");
    std::string json = dir + ".json";
    int st = runTool(drillArgs(dir) + " --max-retries 2 "
                     "--drill-poison-job 1 --stats-json '" + json +
                     "'");
    ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);

    JobToken tok;
    ASSERT_TRUE(readJobTokenFile(dir + "/quarantine/job001", &tok));
    EXPECT_EQ(tok.attempts, 2u);
    EXPECT_NE(tok.lastError.find("drill"), std::string::npos);

    // Survivor dump differs from the full one (fewer parts) but must
    // exist and parse as JSON-ish output.
    std::string bytes = slurp(json);
    EXPECT_FALSE(bytes.empty());
    EXPECT_NE(bytes, referenceStatsJson());
}

TEST(CampaignDrill, FreshSpoolRefusesReuseWithoutResume)
{
    ASSERT_FALSE(campaignBin().empty());
    std::string dir = scratchDir("reuse");
    int st = runTool(drillArgs(dir) + " --in-process");
    ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);
    // Same spool again without --resume: refused (a stale .result
    // would silently skip work), fatal exit 1.
    st = runTool(drillArgs(dir) + " --in-process");
    EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 1);
}
