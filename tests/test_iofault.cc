/**
 * @file
 * Host-I/O chaos-layer tests (support/iofault.hh + the campaign
 * hardening it forced, DESIGN.md §14).
 *
 * Three rings, inside out: the fault-spec grammar and injector
 * counting; the durable io:: wrappers under every injectable fault
 * (ENOSPC mid-write, EIO, short read/write, failed fsync, failed and
 * *lying* rename, torn tmp files, stale mtimes); and the campaign
 * acceptance drills -- a fleet with any single fault injected at any
 * scheduled point, and a randomized-schedule chaos fuzz over full
 * kill/resume campaigns, must still produce a stats dump
 * byte-identical to the clean run, and a fence-stale .result must be
 * provably rejected at the merge.
 *
 * The drill tests drive the real upc780_campaign binary (path baked
 * in as UPC780_CAMPAIGN_BIN) so fork/exec shards suffer the faults
 * exactly as a production fleet would.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "driver/campaign.hh"
#include "driver/checkpoint.hh"
#include "support/iofault.hh"
#include "support/random.hh"
#include "workload/experiments.hh"

using namespace vax;

namespace
{

std::string
scratchDir(const char *name)
{
    std::string dir = ::testing::TempDir() + "upc780_iofault_" +
        name + "_" + std::to_string(static_cast<long>(::getpid()));
    std::string cmd = "rm -rf '" + dir + "'";
    (void)!std::system(cmd.c_str());
    return dir;
}

std::string
campaignBin()
{
    if (const char *env = std::getenv("UPC780_CAMPAIGN_BIN"))
        return env;
#ifdef UPC780_CAMPAIGN_BIN
    return UPC780_CAMPAIGN_BIN;
#else
    return "";
#endif
}

/** Run the campaign binary, capturing stdout+stderr into @p log (the
 *  fence tests grep it for the rejection warning).  @return the raw
 *  wait() status. */
int
runTool(const std::string &args, const std::string &log = "")
{
    std::string sink = log.empty() ? "/dev/null" : log;
    std::string cmd = "'" + campaignBin() + "' " + args + " > '" +
        sink + "' 2>&1";
    return std::system(cmd.c_str());
}

/** Same small fleet geometry as the PR-8 drills: 2 shards, 5 jobs of
 *  6 chunks each, fast heartbeats/backoff. */
std::string
drillArgs(const std::string &spool)
{
    return "--spool '" + spool + "' --shards 2 --cycles 90000 "
           "--checkpoint-interval 15000 --heartbeat-interval 0.2 "
           "--heartbeat-timeout 5 --backoff-base 0.05 "
           "--backoff-cap 0.2";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** The clean run's stats dump, computed once per process. */
const std::string &
referenceStatsJson()
{
    static std::string bytes = [] {
        std::string dir = scratchDir("reference");
        std::string json = dir + ".json";
        int st = runTool(drillArgs(dir) + " --in-process "
                         "--stats-json '" + json + "'");
        EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);
        std::string b = slurp(json);
        EXPECT_FALSE(b.empty());
        return b;
    }();
    return bytes;
}

/** A CampaignConfig matching drillArgs (for spool-path helpers). */
CampaignConfig
drillConfig(const std::string &spool)
{
    CampaignConfig cfg;
    cfg.spool = spool;
    cfg.cycles = 90'000;
    cfg.intervalCycles = 15'000;
    return cfg;
}

/** Build a mutable argv for CampaignConfig::parseFlags. */
struct Argv
{
    explicit Argv(std::initializer_list<const char *> args)
    {
        strings.emplace_back("upc780_campaign");
        for (const char *a : args)
            strings.emplace_back(a);
        for (std::string &s : strings)
            ptrs.push_back(s.data());
        ptrs.push_back(nullptr);
        argc = static_cast<int>(strings.size());
    }

    std::vector<std::string> strings;
    std::vector<char *> ptrs;
    int argc;

    CampaignConfig parse()
    {
        return CampaignConfig::parseFlags(&argc, ptrs.data());
    }
};

/** Write raw bytes (fuzz payloads bypass the durable writers). */
void
writeRaw(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

} // anonymous namespace

// ---------------------------------------------------------------
// Fault-spec grammar: parse, format, fatal on typos.
// ---------------------------------------------------------------

TEST(IoFaultSpec, ParseFormatRoundTrip)
{
    io::FaultPlan p =
        io::FaultPlan::parse("enospc@3~.ckpt,renamelie@1,eio@7~job0");
    ASSERT_EQ(p.rules.size(), 3u);
    EXPECT_EQ(p.rules[0].kind, io::FaultKind::Enospc);
    EXPECT_EQ(p.rules[0].nth, 3u);
    EXPECT_EQ(p.rules[0].match, ".ckpt");
    EXPECT_EQ(p.rules[1].kind, io::FaultKind::RenameLie);
    EXPECT_EQ(p.rules[1].nth, 1u);
    EXPECT_TRUE(p.rules[1].match.empty());
    EXPECT_EQ(p.rules[2].kind, io::FaultKind::Eio);
    EXPECT_EQ(p.format(), "enospc@3~.ckpt,renamelie@1,eio@7~job0");

    // format() is the canonical text: parsing it reproduces the plan.
    io::FaultPlan q = io::FaultPlan::parse(p.format());
    EXPECT_EQ(q.format(), p.format());
}

TEST(IoFaultSpec, RandomizedIsDeterministicPerSeed)
{
    io::FaultPlan a = io::FaultPlan::randomized(42);
    io::FaultPlan b = io::FaultPlan::randomized(42);
    io::FaultPlan c = io::FaultPlan::randomized(43);
    EXPECT_FALSE(a.rules.empty());
    EXPECT_LE(a.rules.size(), 3u);
    EXPECT_EQ(a.format(), b.format());
    // Not a hard guarantee per pair of seeds, but these two differ.
    EXPECT_NE(a.format(), c.format());
    // rand=SEED in a spec expands to the same schedule.
    EXPECT_EQ(io::FaultPlan::parse("rand=42").format(), a.format());
}

TEST(IoFaultSpec, TyposAreFatal)
{
    EXPECT_DEATH(io::FaultPlan::parse("enopsc@1"), "unknown kind");
    EXPECT_DEATH(io::FaultPlan::parse("enospc"), "malformed entry");
    EXPECT_DEATH(io::FaultPlan::parse("enospc@0"),
                 "not a positive operation index");
    EXPECT_DEATH(io::FaultPlan::parse("enospc@2junk"),
                 "not a positive operation index");
    EXPECT_DEATH(io::FaultPlan::parse("eio@1~"), "empty ~substr");
    EXPECT_DEATH(io::FaultPlan::parse("rand=notaseed"),
                 "not a positive operation index");
}

// ---------------------------------------------------------------
// Injector: Nth-op counting, path filters, one-shot delivery.
// ---------------------------------------------------------------

TEST(IoFaultInjector, FiresAtNthMatchingOpOnce)
{
    io::FaultInjector inj(io::FaultPlan::parse("enospc@3"));
    EXPECT_EQ(inj.check(io::OpClass::Write, "a"), io::FaultKind::None);
    // Reads do not advance a write-class rule.
    EXPECT_EQ(inj.check(io::OpClass::Read, "a"), io::FaultKind::None);
    EXPECT_EQ(inj.check(io::OpClass::Write, "b"), io::FaultKind::None);
    EXPECT_EQ(inj.check(io::OpClass::Write, "c"),
              io::FaultKind::Enospc);
    // One-shot: the stream runs clean afterwards.
    EXPECT_EQ(inj.check(io::OpClass::Write, "d"), io::FaultKind::None);
    io::FaultStats st = inj.stats();
    EXPECT_EQ(st.delivered, 1u);
    EXPECT_EQ(st.opsSeen, 5u);
}

TEST(IoFaultInjector, PathFilterCountsOnlyMatches)
{
    io::FaultInjector inj(io::FaultPlan::parse("rename@2~.result"));
    EXPECT_EQ(inj.check(io::OpClass::Rename, "x/job000.result"),
              io::FaultKind::None);
    EXPECT_EQ(inj.check(io::OpClass::Rename, "x/job000"),
              io::FaultKind::None); // no match: not counted
    EXPECT_EQ(inj.check(io::OpClass::Rename, "x/job001.result"),
              io::FaultKind::RenameFail);
}

TEST(IoFaultInjector, UninstalledInjectorIsInert)
{
    // No injector installed: wrappers run clean (the golden path).
    ASSERT_EQ(io::faultInjector(), nullptr);
    std::string dir = scratchDir("inert");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    EXPECT_TRUE(io::atomicWriteText(dir + "/f", "hello"));
    std::string back;
    EXPECT_TRUE(io::readFileText(dir + "/f", &back));
    EXPECT_EQ(back, "hello");
}

// ---------------------------------------------------------------
// Durable wrappers under each fault kind.
// ---------------------------------------------------------------

TEST(IoWrappers, EnospcFailsCleanlyAndReportsErrno)
{
    std::string dir = scratchDir("enospc");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    io::FaultInjector inj(io::FaultPlan::parse("enospc@1"));
    io::ScopedInjector scoped(&inj);
    std::string payload(4096, 'x');
    EXPECT_FALSE(io::atomicWriteText(dir + "/f", payload));
    // The bool-only caller can still learn *how* it failed -- the
    // campaign's degraded checkpoint mode depends on this.
    EXPECT_EQ(io::lastStatus().err, ENOSPC);
    // Nothing visible under the real name, no tmp litter.
    EXPECT_FALSE(fileExists(dir + "/f"));
    std::string back;
    EXPECT_FALSE(io::readFileText(dir + "/f", &back));
}

TEST(IoWrappers, ShortWriteIsAbsorbedByTheWriteLoop)
{
    std::string dir = scratchDir("shortw");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    io::FaultInjector inj(io::FaultPlan::parse("shortwrite@1"));
    io::ScopedInjector scoped(&inj);
    std::string payload(8192, 'y');
    // A lying write(2) accepts half; the loop must finish the rest.
    EXPECT_TRUE(io::atomicWriteText(dir + "/f", payload));
    EXPECT_EQ(inj.stats().delivered, 1u);
    std::string back;
    ASSERT_TRUE(io::readFileText(dir + "/f", &back));
    EXPECT_EQ(back, payload);
}

TEST(IoWrappers, TornTmpLeavesNoVisibleFile)
{
    std::string dir = scratchDir("torn");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    // Establish old bytes, then tear the rewrite mid-tmp.
    ASSERT_TRUE(io::atomicWriteText(dir + "/f", "old"));
    io::FaultInjector inj(io::FaultPlan::parse("torn@1"));
    io::ScopedInjector scoped(&inj);
    EXPECT_FALSE(io::atomicWriteText(dir + "/f", "newnewnew"));
    // The contract: the real name holds the OLD bytes, untouched.
    std::string back;
    ASSERT_TRUE(io::readFileText(dir + "/f", &back));
    EXPECT_EQ(back, "old");
}

TEST(IoWrappers, FsyncFailureFailsTheWrite)
{
    std::string dir = scratchDir("fsync");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    io::FaultInjector inj(io::FaultPlan::parse("fsync@1"));
    io::ScopedInjector scoped(&inj);
    EXPECT_FALSE(io::atomicWriteText(dir + "/f", "bytes"));
    EXPECT_STREQ(io::lastStatus().stage, "fsync");
    EXPECT_FALSE(fileExists(dir + "/f"));
}

TEST(IoWrappers, RenameFailAndRenameLie)
{
    std::string dir = scratchDir("rename");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    ASSERT_TRUE(io::atomicWriteText(dir + "/a", "payload"));

    io::FaultInjector fail(io::FaultPlan::parse("rename@1"));
    {
        io::ScopedInjector scoped(&fail);
        EXPECT_FALSE(io::renameFile(dir + "/a", dir + "/b"));
        // Failed for real: nothing moved.
        EXPECT_TRUE(fileExists(dir + "/a"));
        EXPECT_FALSE(fileExists(dir + "/b"));
    }

    io::FaultInjector lie(io::FaultPlan::parse("renamelie@1"));
    {
        io::ScopedInjector scoped(&lie);
        // The NFS ambiguity: reported failed, actually happened.
        EXPECT_FALSE(io::renameFile(dir + "/a", dir + "/b"));
        EXPECT_FALSE(fileExists(dir + "/a"));
        EXPECT_TRUE(fileExists(dir + "/b"));
    }
}

TEST(IoWrappers, ClaimByRenameSelfHealsALyingRename)
{
    std::string dir = scratchDir("claimlie");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string todo = dir + "/job000";
    ASSERT_TRUE(writeJobTokenFile(todo, JobToken()));
    io::FaultInjector inj(io::FaultPlan::parse("renamelie@1"));
    io::ScopedInjector scoped(&inj);
    // The rename "fails" but the token moved: the claimant must
    // recognize the win, or the token is stranded forever.
    EXPECT_EQ(claimByRename(todo, dir + "/job000.shard0"),
              ClaimOutcome::Won);
    EXPECT_TRUE(fileExists(dir + "/job000.shard0"));
}

TEST(IoWrappers, EioAndShortReadNeverTruncateSilently)
{
    std::string dir = scratchDir("reads");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    ASSERT_TRUE(io::atomicWriteText(dir + "/f", "0123456789"));

    io::FaultInjector eio(io::FaultPlan::parse("eio@1"));
    {
        io::ScopedInjector scoped(&eio);
        std::string back;
        EXPECT_FALSE(io::readFileText(dir + "/f", &back));
        EXPECT_EQ(io::lastStatus().err, EIO);
    }

    io::FaultInjector shrt(io::FaultPlan::parse("shortread@1"));
    {
        io::ScopedInjector scoped(&shrt);
        std::string back;
        // EOF before the stat size is a *failure*, not a short buffer.
        EXPECT_FALSE(io::readFileText(dir + "/f", &back));
        EXPECT_STREQ(io::lastStatus().stage, "short");
    }

    std::string back;
    EXPECT_TRUE(io::readFileText(dir + "/f", &back));
    EXPECT_EQ(back, "0123456789");
}

TEST(IoWrappers, ReadFileCapRejectsOversizedFiles)
{
    std::string dir = scratchDir("cap");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    ASSERT_TRUE(io::atomicWriteText(dir + "/f",
                                    std::string(2048, 'z')));
    std::string back;
    EXPECT_FALSE(io::readFileText(dir + "/f", &back, 1024));
    EXPECT_EQ(io::lastStatus().err, EFBIG);
    EXPECT_TRUE(io::readFileText(dir + "/f", &back, 4096));
}

TEST(IoWrappers, StaleMtimeMakesAgeAbsurd)
{
    std::string dir = scratchDir("stale");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    ASSERT_TRUE(io::atomicWriteText(dir + "/f.hb", "pid 1\n"));
    EXPECT_LT(io::fileAgeSeconds(dir + "/f.hb"), 60.0);
    io::FaultInjector inj(io::FaultPlan::parse("stale@1~.hb"));
    io::ScopedInjector scoped(&inj);
    EXPECT_GT(io::fileAgeSeconds(dir + "/f.hb"), 1e5);
}

// ---------------------------------------------------------------
// Spool-token parse fuzzing: damaged tokens fail soft, never crash.
// ---------------------------------------------------------------

TEST(TokenFuzz, TruncatedTokenReadsAsFresh)
{
    std::string dir = scratchDir("trunc");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string path = dir + "/job000";
    writeRaw(path, "attempts 2\nnotbef");
    JobToken t;
    ASSERT_TRUE(readJobTokenFile(path, &t));
    EXPECT_EQ(t.attempts, 2u); // the parsed prefix survives
    EXPECT_DOUBLE_EQ(t.notBefore, 0.0);
}

TEST(TokenFuzz, NulEmbeddedTokenParsesPerLine)
{
    std::string dir = scratchDir("nul");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string path = dir + "/job000";
    std::string bytes = "attempts 1\n";
    bytes += std::string("garbage\0garbage", 15);
    bytes += "\nfence 4\n";
    writeRaw(path, bytes);
    JobToken t;
    ASSERT_TRUE(readJobTokenFile(path, &t));
    // The NUL kills only its own line; fields around it still parse.
    EXPECT_EQ(t.attempts, 1u);
    EXPECT_EQ(t.fence, 4u);
}

TEST(TokenFuzz, OverlongTokenIsRejectedNotSlurped)
{
    std::string dir = scratchDir("huge");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string path = dir + "/job000";
    writeRaw(path, "attempts 9\n" + std::string(256 * 1024, 'A'));
    JobToken t;
    // Reads as a fresh token (the job survives), but none of the
    // absurd payload is trusted -- attempts resets to 0.
    ASSERT_TRUE(readJobTokenFile(path, &t));
    EXPECT_EQ(t.attempts, 0u);
}

TEST(TokenFuzz, RandomGarbageNeverCrashesTheReader)
{
    std::string dir = scratchDir("fuzz");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string path = dir + "/job000";
    Rng rng(0xF022ED);
    for (int round = 0; round < 200; ++round) {
        size_t len = rng.below(300);
        std::string bytes;
        bytes.reserve(len);
        for (size_t i = 0; i < len; ++i)
            bytes += static_cast<char>(rng.below(256));
        writeRaw(path, bytes);
        JobToken t;
        ASSERT_TRUE(readJobTokenFile(path, &t));
    }
}

TEST(TokenFuzz, FenceRoundTripsThroughTheToken)
{
    std::string dir = scratchDir("fencetok");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string path = dir + "/job000";
    JobToken t;
    t.attempts = 1;
    t.fence = 17;
    ASSERT_TRUE(writeJobTokenFile(path, t));
    JobToken r;
    ASSERT_TRUE(readJobTokenFile(path, &r));
    EXPECT_EQ(r.fence, 17u);
}

TEST(TokenFuzz, FenceRegressedTokenIsMonotonizedByBump)
{
    std::string dir = scratchDir("fencereg");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    ASSERT_EQ(::mkdir((dir + "/fence").c_str(), 0777), 0);
    CampaignConfig cfg;
    cfg.spool = dir;
    // High-water mark 5; a token regressed to 1 (hand-edited or
    // restored from backup) must bump past the MARK, not past 1.
    ASSERT_TRUE(writeFenceFile(campaignFencePath(cfg, 0), 5));
    JobToken tok;
    tok.fence = 1;
    EXPECT_EQ(bumpJobFence(cfg, 0, &tok), 6u);
    EXPECT_EQ(tok.fence, 6u);
    EXPECT_EQ(readFenceFile(campaignFencePath(cfg, 0)), 6u);
    // And a damaged fence file degrades to the token's own floor.
    writeRaw(campaignFencePath(cfg, 0), "gibberish");
    EXPECT_EQ(bumpJobFence(cfg, 0, &tok), 7u);
}

// ---------------------------------------------------------------
// Heartbeat liveness: the beat counter, not the mtime.
// ---------------------------------------------------------------

TEST(HeartbeatBeats, ContentsRoundTrip)
{
    std::string dir = scratchDir("hbinfo");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string hb = dir + "/shard0.hb";
    HeartbeatInfo info;
    EXPECT_FALSE(readHeartbeatFile(hb, &info)); // missing
    ASSERT_TRUE(heartbeatWrite(hb, 4321, 99, 2));
    ASSERT_TRUE(readHeartbeatFile(hb, &info));
    EXPECT_EQ(info.pid, 4321);
    EXPECT_EQ(info.seq, 99u);
    EXPECT_EQ(info.job, 2);
}

TEST(HeartbeatBeats, GarbledContentsFallBackToFalse)
{
    std::string dir = scratchDir("hbgarble");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string hb = dir + "/shard0.hb";
    writeRaw(hb, "not a heartbeat at all\n");
    HeartbeatInfo info;
    // Unparseable contents -> false; the supervisor then falls back
    // to the mtime age (and only then).
    EXPECT_FALSE(readHeartbeatFile(hb, &info));
    EXPECT_GE(heartbeatAgeSeconds(hb), 0.0);
}

TEST(HeartbeatBeats, StaleMtimeCannotFakeADeadShard)
{
    // The point of the beat counter: with contents readable, liveness
    // never consults the (injectable, lie-prone) mtime path.
    std::string dir = scratchDir("hbstale");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string hb = dir + "/shard0.hb";
    ASSERT_TRUE(heartbeatWrite(hb, 1, 7, 0));
    io::FaultInjector inj(io::FaultPlan::parse("stale@1~.hb"));
    io::ScopedInjector scoped(&inj);
    HeartbeatInfo info;
    ASSERT_TRUE(readHeartbeatFile(hb, &info));
    EXPECT_EQ(info.seq, 7u);
    // The stale rule never fired: no Stat op was consulted.
    EXPECT_EQ(inj.stats().delivered, 0u);
}

// ---------------------------------------------------------------
// Campaign acceptance: single faults, chaos fuzz, fence rejection.
// ---------------------------------------------------------------

TEST(CampaignChaos, AnySingleFaultStillByteIdentical)
{
    // One fault of every kind, aimed at the campaign's hot files, at
    // assorted scheduled points.  Each campaign must complete with
    // exit 0 and a stats dump byte-identical to the clean run.
    static const char *const specs[] = {
        "enospc@1~.ckpt",   // checkpoint pause + resume (degraded)
        "enospc@1~.result", // result write requeued with backoff
        "eio@1~.result",    // merge-side read fails soft
        "eio@1~job0",       // token read -> fresh attempt record
        "shortwrite@1~.ckpt", // absorbed by the write loop
        "shortread@1~.result", // torn-at-read -> re-run
        "fsync@1~.hb",      // heartbeat write fails once
        "fsync@2~.ckpt",    // checkpoint fsync fails, retried later
        "rename@1~.result", // result publish fails, requeued
        "rename@1~job0",    // token/claim rename fails (orphan heal)
        "renamelie@1~job0", // claim lie -> self-healed win
        "torn@1~.result",   // torn result tmp
        "torn@1~job0",      // torn token write
        "stale@1~.hb",      // stale mtime vs beat-counter liveness
    };
    for (const char *spec : specs) {
        std::string dir =
            scratchDir((std::string("single_") +
                        std::to_string(&spec - specs)).c_str());
        std::string json = dir + ".json";
        int st = runTool(drillArgs(dir) + " --io-faults '" +
                         std::string(spec) + "' --stats-json '" +
                         json + "'");
        EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0)
            << "spec " << spec << " wait status " << st;
        EXPECT_EQ(slurp(json), referenceStatsJson())
            << "stats diverged under " << spec;
    }
}

TEST(CampaignChaos, RandomizedSchedulesByteIdentical)
{
    // The randomized-schedule chaos fuzz: seed-derived fault
    // schedules across the whole fleet (supervisor clean), byte
    // identity required every time.  Failures replay exactly:
    // upc780_campaign --chaos-drill SEED on the same geometry.
    for (uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
        std::string dir =
            scratchDir(("chaos" + std::to_string(seed)).c_str());
        std::string json = dir + ".json";
        int st = runTool(drillArgs(dir) + " --chaos-drill " +
                         std::to_string(seed) + " --stats-json '" +
                         json + "'");
        EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0)
            << "seed " << seed << " wait status " << st;
        EXPECT_EQ(slurp(json), referenceStatsJson())
            << "stats diverged under chaos seed " << seed;
    }
}

TEST(CampaignChaos, KillResumeUnderChaosByteIdentical)
{
    // The full gauntlet: a chaos campaign whose supervisor is
    // SIGKILLed mid-run (power loss), then resumed *under a fresh
    // chaos schedule*.  The composite must still match the clean run
    // byte for byte.
    std::string dir = scratchDir("chaoskill");
    std::string json = dir + ".json";
    int st = runTool(drillArgs(dir) +
                     " --chaos-drill 55 --drill-die-after-results 2");
    ASSERT_TRUE(WIFSIGNALED(st) ||
                (WIFEXITED(st) && WEXITSTATUS(st) != 0));
    st = runTool(drillArgs(dir) + " --resume --chaos-drill 56 "
                 "--stats-json '" + json + "'");
    EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0)
        << "wait status " << st;
    EXPECT_EQ(slurp(json), referenceStatsJson());
}

TEST(CampaignFence, StaleFencedResultRejectedAtMerge)
{
    // Split-brain drill: finish a campaign, then advance job 0's
    // fence high-water mark past the fence its .result carries --
    // exactly what a zombie shard's late write looks like.  A resumed
    // campaign must REJECT that result at the merge, re-run the job
    // at the new epoch, and still produce the clean bytes.
    std::string dir = scratchDir("fence");
    std::string json = dir + ".json";
    int st = runTool(drillArgs(dir) + " --stats-json '" + json + "'");
    ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);
    EXPECT_EQ(slurp(json), referenceStatsJson());

    CampaignConfig cfg = drillConfig(dir);
    CheckpointConfig ck;
    ck.dir = dir;
    std::vector<SimJob> jobs = campaignJobs(cfg);
    ASSERT_FALSE(jobs.empty());
    std::string rpath = resultPath(ck, 0, jobs[0].profile.name);
    ExperimentResult before;
    ASSERT_TRUE(readResultFile(rpath, &before));

    // The supervisor reclaimed the claim from a "dead" shard: the
    // durable mark moves past the result the shard already wrote.
    uint64_t mark = before.fence + 3;
    ASSERT_TRUE(writeFenceFile(campaignFencePath(cfg, 0), mark));

    std::string log = dir + ".resume.log";
    st = runTool(drillArgs(dir) + " --resume --stats-json '" + json +
                 "'", log);
    ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);
    // Provably rejected: the supervisor said so, out loud...
    EXPECT_NE(slurp(log).find("stale fence"), std::string::npos)
        << slurp(log);
    // ...the re-run result carries the new epoch...
    ExperimentResult after;
    ASSERT_TRUE(readResultFile(rpath, &after));
    EXPECT_GE(after.fence, mark);
    // ...and the composite is still the clean bytes.
    EXPECT_EQ(slurp(json), referenceStatsJson());
}

// ---------------------------------------------------------------
// Flag validation (exit 2) and spec validation (exit 1).
// ---------------------------------------------------------------

TEST(IoFaultFlags, EpochRejectsGarbage)
{
    Argv a({"--spool", "sp", "--shard", "--shard-id", "0", "--epoch",
            "12junk"});
    EXPECT_EXIT(a.parse(), ::testing::ExitedWithCode(2),
                "not a non-negative wall-clock stamp");
    Argv b({"--spool", "sp", "--shard", "--shard-id", "0", "--epoch",
            "-5"});
    EXPECT_EXIT(b.parse(), ::testing::ExitedWithCode(2),
                "not a non-negative wall-clock stamp");
    Argv c({"--spool", "sp", "--shard", "--shard-id", "0", "--epoch",
            "nan"});
    EXPECT_EXIT(c.parse(), ::testing::ExitedWithCode(2),
                "not a non-negative wall-clock stamp");
}

TEST(IoFaultFlags, ShardIdAndPoisonJobRejectGarbage)
{
    Argv a({"--spool", "sp", "--shard", "--shard-id", "zero"});
    EXPECT_EXIT(a.parse(), ::testing::ExitedWithCode(2),
                "not a non-negative integer");
    Argv b({"--spool", "sp", "--drill-poison-job", "1.5"});
    EXPECT_EXIT(b.parse(), ::testing::ExitedWithCode(2),
                "not a non-negative integer");
}

TEST(IoFaultFlags, ChaosDrillExcludesExplicitIoFaults)
{
    Argv a({"--spool", "sp", "--chaos-drill", "7", "--io-faults",
            "eio@1"});
    EXPECT_EXIT(a.parse(), ::testing::ExitedWithCode(2),
                "mutually exclusive");
    Argv b({"--spool", "sp", "--chaos-drill", "7", "--in-process"});
    EXPECT_EXIT(b.parse(), ::testing::ExitedWithCode(2),
                "cannot combine with --in-process");
}

TEST(IoFaultFlags, BadIoFaultSpecIsFatalBeforeLaunch)
{
    Argv a({"--spool", "sp", "--io-faults", "enopsc@1"});
    EXPECT_EXIT(a.parse(), ::testing::ExitedWithCode(1),
                "unknown kind");
}

TEST(IoFaultFlags, IoFaultsParseIntoConfig)
{
    Argv a({"--spool", "sp", "--io-faults", "eio@2~.ckpt"});
    CampaignConfig cfg = a.parse();
    EXPECT_EQ(cfg.ioFaults, "eio@2~.ckpt");
    Argv b({"--spool", "sp", "--chaos-drill", "9"});
    CampaignConfig cfg2 = b.parse();
    EXPECT_EQ(cfg2.chaosSeed, 9u);
    EXPECT_TRUE(cfg2.ioFaults.empty());
}
