/**
 * @file
 * Execute-every-opcode sweep: for each of the 130+ implemented
 * opcodes, build a minimal valid instance from its operand signature,
 * run it on the full machine, and require clean completion.  Also
 * checks that the disassembler renders the right mnemonic for the
 * assembled bytes.
 */

#include <gtest/gtest.h>

#include "arch/decimal.hh"
#include "arch/disasm.hh"
#include "arch/ffloat.hh"
#include "cpu/pregs.hh"
#include "tests/sim_test_util.hh"

namespace vax::test
{

using Op = Operand;

namespace
{

/** A safe operand for the given access/type in the sweep harness. */
Operand
operandFor(const OperandDef &od, unsigned index)
{
    switch (od.access) {
      case Access::Read:
        switch (od.type) {
          case DataType::FFloat:
            return Op::imm(doubleToF(2.0 + index));
          case DataType::Quad:
            return Op::rel("qdata");
          case DataType::Byte:
          case DataType::Word:
          case DataType::Long:
          default:
            // Nonzero and small: safe as a divisor, shift count,
            // length, probe mode, queue pointer, etc.
            return Op::lit(static_cast<uint8_t>(3 + index));
        }
      case Access::Modify:
        return Op::reg(R6);
      case Access::Write:
        return od.type == DataType::Quad ? Op::reg(R2) : Op::reg(R7);
      case Access::Address:
        return Op::rel("adata");
      case Access::Field:
        return Op::reg(R8);
      case Access::Branch:
        return Op::branch("next");
    }
    return Op::reg(R6);
}

} // anonymous namespace

class OpcodeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(OpcodeSweep, ExecutesCleanly)
{
    uint8_t opc = static_cast<uint8_t>(GetParam());
    const OpcodeInfo &info = opcodeInfo(opc);
    if (!info.valid)
        GTEST_SKIP() << "unimplemented encoding";
    if (opc == op::HALT)
        GTEST_SKIP() << "HALT terminates every sweep program anyway";
    if (opc == op::BPT)
        GTEST_SKIP() << "BPT faults by design (separate test)";

    BareMachine m;
    auto &a = m.asmblr;

    // Machine state some opcodes need.
    m.cpu->ebox().setPrRaw(pr::PCBB, 0x4000);
    m.cpu->ebox().setPrRaw(pr::SCBB, 0x200);
    m.cpu->ebox().setGpr(R6, 10);
    m.cpu->ebox().setGpr(R7, 3);
    m.cpu->ebox().setGpr(R8, 0x55AA);
    // CHMK vectors to the instruction after itself; CALLS-style
    // returns land on "next" too.
    // (The vector is patched after assembly below.)

    std::vector<Operand> ops;
    for (unsigned i = 0; i < info.numOperands; ++i)
        ops.push_back(operandFor(info.operands[i], i));

    // Flows that interpret their address operands need curated ones.
    if (info.flow == ExecFlow::CallG || info.flow == ExecFlow::CallS)
        ops.back() = Op::rel("proc");
    if (info.flow == ExecFlow::Jmp || info.flow == ExecFlow::Jsb)
        ops[0] = Op::rel("next");
    if (info.flow == ExecFlow::InsQue)
        ops = {Op::rel("qent"), Op::rel("qhdr2")};
    if (info.flow == ExecFlow::RemQue) {
        // Insert first so there is something valid to remove.
        a.instr(op::INSQUE, {Op::rel("qent"), Op::rel("qhdr2")});
        ops[0] = Op::rel("qent");
    }

    VirtAddr test_pc = a.here(); // the instruction under test
    a.instr(opc, ops);
    if (info.flow == ExecFlow::Case) {
        // Selector 3, base 4 -> out of range: falls through past the
        // empty table region.
        a.caseTable({"next", "next"});
    }
    a.label("next");
    a.instr(op::HALT);

    a.label("proc");
    a.entryMask(1u << 2);
    a.instr(op::RET);

    a.align(4);
    a.label("adata");
    for (uint8_t b : intToPacked(42, 12)) // packed for DECIMAL 'ab'
        a.byte(b);
    a.space(64 - packedBytes(12), 'x');   // string bytes for CHARACTER
    a.label("qdata");
    a.lword(0x11111111);
    a.lword(0x22222222);
    a.label("qhdr2");
    a.addrLong("qhdr2");
    a.addrLong("qhdr2");
    a.label("qent");
    a.lword(0);
    a.lword(0);

    // LDPCTX state: a sane kernel SP and resume PC in the PCB.
    m.cpu->mem().phys().write(0x4000 + 0, 0x18000, 4);  // KSP
    m.cpu->mem().phys().write(0x4000 + 64, 0x100, 4);   // PC
    m.cpu->mem().phys().write(0x4000 + 68, 0, 4);       // PSL

    bool halted = m.run(200000);
    EXPECT_TRUE(halted) << info.mnemonic;

    // Disassembler agreement on the first instruction.
    auto reader = [&](VirtAddr va) {
        return m.cpu->mem().phys().readByte(va);
    };
    auto d = disassemble(test_pc, reader);
    EXPECT_TRUE(d.valid) << info.mnemonic;
    EXPECT_EQ(d.text.substr(0, std::string(info.mnemonic).size()),
              info.mnemonic);
}

INSTANTIATE_TEST_SUITE_P(All, OpcodeSweep, ::testing::Range(0, 256));

TEST(OpcodeSweepExtras, BptFaults)
{
    EXPECT_DEATH({
        BareMachine m;
        m.asmblr.instr(op::BPT);
        m.asmblr.instr(op::HALT);
        m.run();
    }, "breakpoint");
}

TEST(OpcodeSweepExtras, ReservedOpcodeFaults)
{
    // 0xFF is unimplemented; executing it is a reserved-instruction
    // fault.
    EXPECT_DEATH({
        BareMachine m;
        m.asmblr.byte(0xFF);
        m.run();
    }, "reserved instruction");
}

TEST(OpcodeSweepExtras, HaltInUserModeFaults)
{
    EXPECT_DEATH({
        BareMachine m;
        m.asmblr.instr(op::HALT);
        auto image = m.asmblr.finish();
        m.cpu->mem().phys().load(m.asmblr.base(), image);
        m.cpu->reset(m.asmblr.base(), CpuMode::User);
        m.cpu->ebox().setGpr(SP, 0x20000);
        m.cpu->run(1000);
    }, "privileged");
}

} // namespace vax::test
