/**
 * @file
 * Virtual-memory tests on the mapped machine: TB-fill microcode paths
 * (system, process, double miss), miss accounting in the MemMgmt row,
 * I-stream misses, and protection.
 */

#include <gtest/gtest.h>

#include "arch/assembler.hh"
#include "cpu/cpu.hh"
#include "cpu/pregs.hh"
#include "mem/page_table.hh"
#include "upc/analyzer.hh"
#include "upc/monitor.hh"

namespace vax::test
{

using Op = Operand;

namespace
{

/**
 * A minimal mapped machine: an SPT at 0x1000 linear-mapping all of
 * physical memory (kernel), and one P0 page table at 0x8000 mapping
 * 64 user pages onto physical 0x40000+.
 */
struct MappedMachine
{
    MappedMachine()
    {
        auto &phys = cpu.mem().phys();
        uint32_t pages = cpu.mem().config().memBytes / pageBytes;
        for (uint32_t i = 0; i < pages; ++i)
            phys.write(0x1000 + 4 * i, pte::make(i, false, false), 4);
        for (uint32_t j = 0; j < 64; ++j) {
            phys.write(0x8000 + 4 * j,
                       pte::make((0x40000 >> pageShift) + j, true,
                                 true),
                       4);
        }
        cpu.setCycleSink(&monitor);
        Ebox &e = cpu.ebox();
        e.setPrRaw(pr::SBR, 0x1000);
        e.setPrRaw(pr::SLR, pages);
        e.setPrRaw(pr::P0BR, systemBase + 0x8000); // system VA
        e.setPrRaw(pr::P0LR, 64);
    }

    /** Load code at system VA and run it in kernel mode. */
    bool
    runKernel(Assembler &a, uint64_t max_cycles = 200000)
    {
        auto image = a.finish();
        cpu.mem().phys().load(a.base() - systemBase, image);
        cpu.reset(a.base());
        cpu.ebox().setGpr(SP, systemBase + 0x30000);
        return cpu.run(max_cycles);
    }

    Cpu780 cpu;
    UpcMonitor monitor;
};

} // anonymous namespace

TEST(VirtualMemory, SystemSpaceFillAndReuse)
{
    MappedMachine m;
    Assembler a(systemBase + 0x20000);
    // Two reads of the same system page: one TB miss total.
    a.instr(op::MOVL, {Op::absolute(systemBase + 0x5000),
                       Op::reg(R1)});
    a.instr(op::MOVL, {Op::absolute(systemBase + 0x5004),
                       Op::reg(R2)});
    a.instr(op::HALT);
    m.cpu.mem().phys().write(0x5000, 123, 4);
    m.cpu.mem().phys().write(0x5004, 456, 4);
    ASSERT_TRUE(m.runKernel(a));
    EXPECT_EQ(m.cpu.ebox().gpr(R1), 123u);
    EXPECT_EQ(m.cpu.ebox().gpr(R2), 456u);
    // D-stream misses: the data page (plus the stack page if touched,
    // but this program does not push).  I-stream: the code page.
    const auto &tb = m.cpu.mem().tb().stats();
    EXPECT_EQ(tb.missesD, 1u);
    EXPECT_GE(tb.missesI, 1u);
}

TEST(VirtualMemory, ProcessSpaceDoubleMiss)
{
    MappedMachine m;
    Assembler a(systemBase + 0x20000);
    // A P0 access from kernel mode: the process PTE lives at a system
    // VA, so the first fill also misses on the page-table page (the
    // double-miss path through MM.sptread).
    a.instr(op::MOVL, {Op::absolute(0x00000100), Op::reg(R1)});
    a.instr(op::HALT);
    m.cpu.mem().phys().write(0x40100, 0xABCD, 4);
    ASSERT_TRUE(m.runKernel(a));
    EXPECT_EQ(m.cpu.ebox().gpr(R1), 0xABCDu);

    HistogramAnalyzer an(m.cpu.controlStore(), m.monitor.histogram());
    EXPECT_GT(an.tbMissPerInstr(), 0.0);
    // The MemMgmt row collected the service cycles.
    EXPECT_GT(an.rowTotal(Row::MemMgmt), 0.0);
    EXPECT_GT(an.tbServiceCyclesPerMiss(), 8.0);
    EXPECT_LT(an.tbServiceCyclesPerMiss(), 40.0);
}

TEST(VirtualMemory, TbMissCountsMatchHistogramMarks)
{
    MappedMachine m;
    Assembler a(systemBase + 0x20000);
    // Touch several distinct P0 pages.
    a.instr(op::MOVL, {Op::imm(0), Op::reg(R2)});
    a.instr(op::MOVL, {Op::imm(8), Op::reg(R3)});
    a.label("l");
    a.instr(op::MOVL, {Op::disp(0, R2).idx(R0), Op::reg(R1)});
    a.instr(op::ADDL2, {Op::imm(512), Op::reg(R2)});
    a.instr(op::SOBGTR, {Op::reg(R3), Op::branch("l")});
    a.instr(op::HALT);
    ASSERT_TRUE(m.runKernel(a));
    HistogramAnalyzer an(m.cpu.controlStore(), m.monitor.histogram());
    const auto &tb = m.cpu.mem().tb().stats();
    uint64_t hist_misses = static_cast<uint64_t>(
        an.tbMissPerInstr() * an.instructions() + 0.5);
    EXPECT_EQ(hist_misses, tb.missesD + tb.missesI);
    EXPECT_GE(tb.missesD, 8u);
}

TEST(VirtualMemory, IStreamMissServiced)
{
    MappedMachine m;
    Assembler a(systemBase + 0x20000);
    // Jump to a far (unmapped-in-TB) system page: the I-stream TB
    // miss is serviced when decode starves.
    a.instr(op::JMP, {Op::absolute(systemBase + 0x24000)});
    auto image = a.finish();
    m.cpu.mem().phys().load(0x20000, image);
    Assembler b(systemBase + 0x24000);
    b.instr(op::MOVL, {Op::imm(7), Op::reg(R1)});
    b.instr(op::HALT);
    auto image2 = b.finish();
    m.cpu.mem().phys().load(0x24000, image2);
    m.cpu.reset(systemBase + 0x20000);
    m.cpu.ebox().setGpr(SP, systemBase + 0x30000);
    ASSERT_TRUE(m.cpu.run(100000));
    EXPECT_EQ(m.cpu.ebox().gpr(R1), 7u);
    EXPECT_GE(m.cpu.mem().tb().stats().missesI, 2u);
}

TEST(VirtualMemory, UserCannotTouchSystemSpace)
{
    // User-mode access to a kernel-only page must fault; the
    // simulator treats that as fatal (workloads must not do it).
    MappedMachine m;
    Assembler a(0x0); // user code in P0
    a.instr(op::MOVL, {Op::absolute(systemBase + 0x5000),
                       Op::reg(R1)});
    a.instr(op::HALT);
    auto image = a.finish();
    m.cpu.mem().phys().load(0x40000, image);
    m.cpu.reset(0, CpuMode::User);
    m.cpu.ebox().setGpr(SP, 0x8000);
    EXPECT_DEATH(m.cpu.run(10000), "access violation");
}

TEST(VirtualMemory, TbInvalidateForcesRefill)
{
    MappedMachine m;
    Assembler a(systemBase + 0x20000);
    a.instr(op::MOVL, {Op::absolute(0x100), Op::reg(R1)});
    a.instr(op::MTPR, {Op::imm(0x100), Op::imm(pr::TBIS)});
    a.instr(op::MOVL, {Op::absolute(0x100), Op::reg(R2)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.runKernel(a));
    // Two D-stream misses on the same page: the explicit invalidate
    // forced the second fill.
    EXPECT_GE(m.cpu.mem().tb().stats().missesD, 2u);
}

} // namespace vax::test
