/**
 * @file
 * Robustness tests: deterministic fault injection (same seed, same
 * fault schedule, same stats dump), guarded-pool job isolation (a
 * poisoned job fails without perturbing its siblings' merged stats),
 * the forward-progress watchdog (unit behavior plus a deliberately
 * looping microcode stub), and the accounting self-check (clean runs
 * pass; a corrupted histogram is caught).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/cpu.hh"
#include "cpu/ebox.hh"
#include "cpu/hw_counters.hh"
#include "cpu/ib.hh"
#include "cpu/ifetch.hh"
#include "cpu/interrupts.hh"
#include "driver/sim_pool.hh"
#include "mem/mem_system.hh"
#include "support/faultinject.hh"
#include "support/sim_error.hh"
#include "support/stats.hh"
#include "ucode/control_store.hh"
#include "upc/selfcheck.hh"
#include "workload/experiments.hh"

namespace vax::test
{

namespace
{

/** Long enough for every workload to boot and take real faults. */
constexpr uint64_t kCycles = 150'000;

/** A fault campaign dense enough that every class fires at kCycles. */
FaultConfig
denseFaults(uint64_t seed)
{
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.cacheParityRate = 2e-4;
    cfg.tbCorruptRate = 1e-4;
    cfg.sbiTimeoutRate = 1e-3;
    cfg.cacheDisableAfter = 0; // keep the cache up: more parity draws
    return cfg;
}

ExperimentResult
runWithFaults(const WorkloadProfile &profile, const FaultConfig &cfg)
{
    SimJob job = SimJob::forProfile(profile, kCycles);
    job.sim.mem.faults = cfg;
    return runJob(job);
}

std::string
compositeDump(const CompositeResult &comp)
{
    stats::Registry reg;
    registerCompositeStats(reg, comp);
    return reg.dumpText();
}

} // anonymous namespace

// ===================== fault configuration =====================

TEST(FaultConfig, DefaultIsDisabled)
{
    FaultConfig cfg;
    EXPECT_FALSE(cfg.enabled());
}

TEST(FaultConfig, ParseSpecRoundTrip)
{
    FaultConfig cfg = FaultConfig::parse(
        "parity=1e-3,tb=5e-4,sbi=0.01,seed=42,disable=3,penalty=128,"
        "pcycle=200:50:100");
    EXPECT_TRUE(cfg.enabled());
    EXPECT_DOUBLE_EQ(cfg.cacheParityRate, 1e-3);
    EXPECT_DOUBLE_EQ(cfg.tbCorruptRate, 5e-4);
    EXPECT_DOUBLE_EQ(cfg.sbiTimeoutRate, 0.01);
    EXPECT_EQ(cfg.seed, 42u);
    EXPECT_EQ(cfg.cacheDisableAfter, 3u);
    EXPECT_EQ(cfg.sbiTimeoutPenalty, 128u);
    ASSERT_EQ(cfg.parityCycles.size(), 3u);
    // The schedule is sorted regardless of spec order.
    EXPECT_EQ(cfg.parityCycles[0], 50u);
    EXPECT_EQ(cfg.parityCycles[1], 100u);
    EXPECT_EQ(cfg.parityCycles[2], 200u);
}

TEST(FaultConfig, RejectsUnknownAndMalformedFields)
{
    // A mistyped campaign must not silently run fault-free.
    EXPECT_DEATH(FaultConfig::parse("partiy=1e-3"), "unknown field");
    EXPECT_DEATH(FaultConfig::parse("parity"), "malformed field");
    EXPECT_DEATH(FaultConfig::parse("parity=2.0"), "bad rate");
    EXPECT_DEATH(FaultConfig::parse("seed=12junk"), "bad count");
}

// ===================== injection determinism =====================

TEST(FaultInjection, SameSeedSameScheduleAndStats)
{
    FaultConfig cfg = denseFaults(0xFA17);
    ExperimentResult a =
        runWithFaults(timesharingLightProfile(), cfg);
    ExperimentResult b =
        runWithFaults(timesharingLightProfile(), cfg);

    // The campaign actually fired, through every layer: injection,
    // microcode dispatch, and the guest handler.
    EXPECT_GT(a.hw.faults.parityErrors + a.hw.faults.tbCorruptions +
                  a.hw.faults.sbiTimeouts,
              0u);
    EXPECT_GT(a.hw.faults.machineChecks, 0u);
    EXPECT_GT(a.hw.faults.osMachineChecks, 0u);
    EXPECT_LE(a.hw.faults.osMachineChecks, a.hw.faults.machineChecks);

    // And identically both times: schedule, delivery, and the whole
    // measurement (the injector's RNG stream is part of the machine).
    EXPECT_EQ(a.hw.faults.parityErrors, b.hw.faults.parityErrors);
    EXPECT_EQ(a.hw.faults.tbCorruptions, b.hw.faults.tbCorruptions);
    EXPECT_EQ(a.hw.faults.sbiTimeouts, b.hw.faults.sbiTimeouts);
    EXPECT_EQ(a.hw.faults.machineChecks, b.hw.faults.machineChecks);
    EXPECT_EQ(a.hw.faults.osMachineChecks,
              b.hw.faults.osMachineChecks);
    EXPECT_TRUE(a.hist.normal == b.hist.normal);
    EXPECT_TRUE(a.hist.stalled == b.hist.stalled);
    EXPECT_EQ(a.hw.counters.instructions, b.hw.counters.instructions);
    EXPECT_EQ(a.hw.counters.cycles, b.hw.counters.cycles);
}

TEST(FaultInjection, ScheduledParityCyclesFire)
{
    FaultConfig cfg;
    cfg.parityCycles = {10'000, 20'000, 30'000};
    cfg.cacheDisableAfter = 0;
    ExperimentResult r =
        runWithFaults(timesharingLightProfile(), cfg);
    // Each scheduled cycle arms exactly one parity error, taken by
    // the first cache read hit at or after it.
    EXPECT_EQ(r.hw.faults.parityErrors, 3u);
    EXPECT_EQ(r.hw.faults.machineChecks, 3u);
}

TEST(FaultInjection, CacheDisableDegradation)
{
    FaultConfig cfg;
    cfg.cacheParityRate = 5e-3; // a storm: disable threshold is hit
    cfg.cacheDisableAfter = 4;
    ExperimentResult r =
        runWithFaults(timesharingLightProfile(), cfg);
    EXPECT_EQ(r.hw.faults.cacheDisables, 1u);
    EXPECT_EQ(r.hw.faults.parityErrors, 4u); // no hits once disabled
    // Degraded but correct: the machine keeps retiring instructions.
    EXPECT_FALSE(r.failed);
    EXPECT_GT(r.hw.counters.instructions, 0u);
}

TEST(FaultInjection, ZeroRatesLeaveBaselineUntouched)
{
    // FaultConfig{} must be indistinguishable from no fault plumbing:
    // the injector is not constructed, so no RNG draw is ever made.
    ExperimentResult clean =
        runExperiment(timesharingLightProfile(), kCycles);
    ExperimentResult wired =
        runWithFaults(timesharingLightProfile(), FaultConfig());
    EXPECT_TRUE(clean.hist.normal == wired.hist.normal);
    EXPECT_TRUE(clean.hist.stalled == wired.hist.stalled);
    EXPECT_EQ(clean.hw.counters.cycles, wired.hw.counters.cycles);
    EXPECT_FALSE(wired.hw.faults.any());
}

// ===================== pool isolation =====================

TEST(PoolIsolation, FailedJobDoesNotPerturbSiblings)
{
    constexpr uint64_t cycles = 60'000;

    std::vector<SimJob> clean_jobs = compositeJobs(cycles);
    CompositeResult clean = SimPool(3).runComposite(clean_jobs);

    // Poison one extra job: no registered processes makes VMS-lite's
    // boot fatal(), which the guarded worker turns into a SimError.
    std::vector<SimJob> jobs = clean_jobs;
    WorkloadProfile poisoned = timesharingLightProfile();
    poisoned.name = "poisoned";
    poisoned.numUsers = 0;
    jobs.push_back(SimJob::forProfile(poisoned, cycles));

    SimPool pool(3);
    ASSERT_FALSE(pool.strict());
    CompositeResult with_poison = pool.runComposite(jobs);

    // The poisoned job failed (after its deterministic retry) and
    // the pool still completed every sibling.
    ASSERT_EQ(with_poison.parts.size(), jobs.size());
    const ExperimentResult &bad = with_poison.parts.back();
    EXPECT_TRUE(bad.failed);
    EXPECT_EQ(bad.retries, 1u);
    EXPECT_NE(bad.error.find("no processes registered"),
              std::string::npos);

    PoolTelemetry tele = computeTelemetry(with_poison.parts);
    EXPECT_EQ(tele.failedJobs, 1u);
    EXPECT_NE(tele.summary().find("1 FAILED"), std::string::npos);

    // The survivors' merged stats dump is byte-identical to a run
    // that never contained the poisoned job.
    EXPECT_EQ(compositeDump(with_poison), compositeDump(clean));
}

// ===================== watchdog =====================

TEST(Watchdog, FiresAfterWindowWithoutProgress)
{
    ForwardProgressWatchdog wd(100);
    wd.poke(7, 0, 5);               // progress recorded
    wd.poke(7, 99, 5);              // inside the window: quiet
    EXPECT_THROW(wd.poke(7, 200, 5), SimError);
}

TEST(Watchdog, ProgressResetsTheWindow)
{
    ForwardProgressWatchdog wd(100);
    wd.poke(1, 0, 5);
    wd.poke(2, 90, 5);              // retired something: window slides
    wd.poke(2, 150, 5);             // only 60 cycles since progress
    EXPECT_THROW(wd.poke(2, 300, 5), SimError);
}

TEST(Watchdog, ZeroWindowDisables)
{
    ForwardProgressWatchdog wd(0);
    for (uint64_t c = 0; c < 1'000'000; c += 100'000)
        wd.poke(0, c, 5);           // never throws
}

TEST(Watchdog, CatchesLoopingMicrocode)
{
    // A one-word control store whose only microinstruction jumps to
    // itself: the machine busily executes cycles but never retires an
    // instruction -- exactly the hang the watchdog exists to name.
    ControlStore cs;
    MicroAssembler as(cs);
    UAnnotation ann;
    ann.name = "SPIN";
    as.emit(ann, flowToAddr(0), [](Ebox &e) { e.uJumpAddr(0); });
    cs.entries.iid = 0;

    MemConfig mcfg;
    MemSystem mem(mcfg, 1);
    InstructionBuffer ib(8);
    IFetch ifetch(ib, mem);
    InterruptController intc;
    IntervalTimer timer;
    HwCounters hw;
    Ebox ebox(cs, mem, ib, ifetch, intc, timer, hw);
    ebox.reset(0);

    ForwardProgressWatchdog wd(1'000);
    bool caught = false;
    try {
        for (uint64_t c = 0; c < 100'000; ++c) {
            ebox.cycle();
            mem.tick();
            wd.poke(hw.instructions, c, ebox.currentUpc());
        }
    } catch (const SimError &e) {
        caught = true;
        EXPECT_EQ(e.cause(), SimErrorCause::Watchdog);
        EXPECT_EQ(e.microPc(), 0u); // the looping micro-PC, by name
        EXPECT_NE(std::string(e.what()).find("no instruction retired"),
                  std::string::npos);
    }
    EXPECT_TRUE(caught);
}

// ===================== self-check =====================

TEST(SelfCheck, CleanRunHoldsEveryIdentity)
{
    Cpu780 ref;
    ExperimentResult r =
        runExperiment(timesharingLightProfile(), kCycles);
    SelfCheckReport rep = selfCheckResult(ref.controlStore(), r);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_GT(rep.checks, 10u);
}

TEST(SelfCheck, CleanCompositeHoldsEveryIdentity)
{
    Cpu780 ref;
    CompositeResult comp = runComposite(60'000);
    SelfCheckReport rep =
        selfCheckComposite(ref.controlStore(), comp);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(SelfCheck, FaultyRunStillConserves)
{
    // Fault campaigns change the cycle stream but must not break the
    // accounting: machine checks are counted cycles like any others.
    Cpu780 ref;
    ExperimentResult r =
        runWithFaults(timesharingLightProfile(), denseFaults(7));
    ASSERT_GT(r.hw.faults.machineChecks, 0u);
    SelfCheckReport rep = selfCheckResult(ref.controlStore(), r);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(SelfCheck, CatchesCorruptedHistogram)
{
    Cpu780 ref;
    ExperimentResult r =
        runExperiment(timesharingLightProfile(), kCycles);
    // Inflate the IID bucket past the executed-cycle total: cycle
    // conservation against the hardware counter must now fail.
    r.hist.normal[ref.controlStore().entries.iid] +=
        r.hw.counters.cycles;
    SelfCheckReport rep = selfCheckResult(ref.controlStore(), r);
    EXPECT_FALSE(rep.ok());
    EXPECT_NE(rep.summary().find("FAILED"), std::string::npos);
    EXPECT_NE(rep.summary().find("histogram cycles <= executed"),
              std::string::npos);
}

TEST(SelfCheck, FailedResultIsSkipped)
{
    Cpu780 ref;
    ExperimentResult r;
    r.failed = true;
    SelfCheckReport rep = selfCheckResult(ref.controlStore(), r);
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.checks, 0u);
}

} // namespace vax::test
