/**
 * @file
 * Instruction-semantics tests: every execute flow is exercised end to
 * end on the full machine, with parameterized sweeps over addressing
 * modes and ALU operations.
 */

#include <gtest/gtest.h>

#include "arch/decimal.hh"
#include "arch/ffloat.hh"
#include "tests/sim_test_util.hh"

namespace vax::test
{

using Op = Operand;

// ---------------- addressing-mode matrix ----------------

/** Each case loads the value 0x11223344 into R1 via a different
 *  source addressing mode. */
struct ModeCase
{
    const char *name;
    void (*build)(Assembler &);
};

class AddressingModeTest : public ::testing::TestWithParam<ModeCase>
{
};

TEST_P(AddressingModeTest, LoadsValue)
{
    BareMachine m;
    auto &a = m.asmblr;
    // Common data the cases reference.
    GetParam().build(a);
    a.instr(op::HALT);
    a.align(4);
    a.label("val");
    a.lword(0x11223344);
    a.label("ptr");
    a.addrLong("val");
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 0x11223344u) << GetParam().name;
}

static const ModeCase mode_cases[] = {
    {"register", [](Assembler &a) {
         a.instr(op::MOVL, {Op::imm(0x11223344), Op::reg(R2)});
         a.instr(op::MOVL, {Op::reg(R2), Op::reg(R1)});
     }},
    {"immediate", [](Assembler &a) {
         a.instr(op::MOVL, {Op::imm(0x11223344), Op::reg(R1)});
     }},
    {"register_deferred", [](Assembler &a) {
         a.instr(op::MOVAB, {Op::rel("val"), Op::reg(R2)});
         a.instr(op::MOVL, {Op::regDef(R2), Op::reg(R1)});
     }},
    {"byte_displacement", [](Assembler &a) {
         a.instr(op::MOVAB, {Op::rel("val"), Op::reg(R2)});
         a.instr(op::SUBL2, {Op::imm(8), Op::reg(R2)});
         a.instr(op::MOVL, {Op::disp(8, R2), Op::reg(R1)});
     }},
    {"word_displacement", [](Assembler &a) {
         a.instr(op::MOVAB, {Op::rel("val"), Op::reg(R2)});
         a.instr(op::SUBL2, {Op::imm(0x300), Op::reg(R2)});
         a.instr(op::MOVL, {Op::disp(0x300, R2), Op::reg(R1)});
     }},
    {"long_displacement", [](Assembler &a) {
         a.instr(op::MOVAB, {Op::rel("val"), Op::reg(R2)});
         a.instr(op::SUBL2, {Op::imm(0x10000), Op::reg(R2)});
         a.instr(op::MOVL, {Op::disp(0x10000, R2), Op::reg(R1)});
     }},
    {"autoincrement", [](Assembler &a) {
         a.instr(op::MOVAB, {Op::rel("val"), Op::reg(R2)});
         a.instr(op::MOVL, {Op::autoInc(R2), Op::reg(R1)});
         // R2 must have advanced by 4.
         a.instr(op::MOVAB, {Op::rel("val"), Op::reg(R3)});
         a.instr(op::SUBL2, {Op::reg(R3), Op::reg(R2)});
         a.instr(op::CMPL, {Op::reg(R2), Op::imm(4)});
         a.instr(op::BEQL, {Op::branch("okinc")});
         a.instr(op::CLRL, {Op::reg(R1)}); // poison on failure
         a.label("okinc");
     }},
    {"autodecrement", [](Assembler &a) {
         a.instr(op::MOVAB, {Op::rel("val"), Op::reg(R2)});
         a.instr(op::ADDL2, {Op::imm(4), Op::reg(R2)});
         a.instr(op::MOVL, {Op::autoDec(R2), Op::reg(R1)});
     }},
    {"autoincrement_deferred", [](Assembler &a) {
         a.instr(op::MOVAB, {Op::rel("ptr"), Op::reg(R2)});
         a.instr(op::MOVL, {Op::autoIncDef(R2), Op::reg(R1)});
     }},
    {"displacement_deferred", [](Assembler &a) {
         a.instr(op::MOVAB, {Op::rel("ptr"), Op::reg(R2)});
         a.instr(op::MOVL, {Op::dispDef(0, R2), Op::reg(R1)});
     }},
    {"relative", [](Assembler &a) {
         a.instr(op::MOVL, {Op::rel("val"), Op::reg(R1)});
     }},
    {"relative_deferred", [](Assembler &a) {
         a.instr(op::MOVL, {Op::relDef("ptr"), Op::reg(R1)});
     }},
    {"indexed", [](Assembler &a) {
         a.instr(op::MOVAB, {Op::rel("val"), Op::reg(R2)});
         a.instr(op::SUBL2, {Op::imm(12), Op::reg(R2)});
         a.instr(op::MOVL, {Op::imm(3), Op::reg(R4)});
         a.instr(op::MOVL, {Op::disp(0, R2).idx(R4), Op::reg(R1)});
     }},
    {"indexed_deferred", [](Assembler &a) {
         a.instr(op::MOVAB, {Op::rel("ptr"), Op::reg(R2)});
         a.instr(op::MOVL, {Op::imm(1), Op::reg(R4)});
         // @-4(R2)[R4]: pointer at R2-4+... deferred: pointer value
         // then + R4*4; point one long below val.
         a.instr(op::MOVL, {Op::dispDef(0, R2), Op::reg(R3)});
         a.instr(op::SUBL2, {Op::imm(4), Op::regDef(R2)});
         a.instr(op::MOVL, {Op::dispDef(0, R2).idx(R4),
                            Op::reg(R1)});
     }},
};

INSTANTIATE_TEST_SUITE_P(
    Modes, AddressingModeTest, ::testing::ValuesIn(mode_cases),
    [](const ::testing::TestParamInfo<ModeCase> &info) {
        return info.param.name;
    });

// ---------------- ALU sweep ----------------

struct AluCase
{
    const char *name;
    uint8_t opcode;
    uint32_t src, dst, expect;
};

class AluInstrTest : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluInstrTest, TwoOperandForm)
{
    const AluCase &c = GetParam();
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(c.dst), Op::reg(R1)});
    a.instr(c.opcode, {Op::imm(c.src), Op::reg(R1)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    unsigned bytes = dataTypeBytes(opcodeInfo(c.opcode).sizeLatch());
    uint32_t mask = bytes >= 4 ? ~0u : ((1u << (8 * bytes)) - 1);
    EXPECT_EQ(m.gpr(R1) & mask, c.expect & mask) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluInstrTest,
    ::testing::Values(
        AluCase{"addl2", op::ADDL2, 5, 7, 12},
        AluCase{"addw2", op::ADDW2, 0xFFFF, 2, 1},
        AluCase{"addb2", op::ADDB2, 0x7F, 1, 0x80},
        AluCase{"subl2", op::SUBL2, 5, 7, 2},
        AluCase{"subb2", op::SUBB2, 1, 0, 0xFF},
        AluCase{"bisl2", op::BISL2, 0xF0, 0x0F, 0xFF},
        AluCase{"bicl2", op::BICL2, 0x0F, 0xFF, 0xF0},
        AluCase{"xorl2", op::XORL2, 0xFF, 0x0F, 0xF0},
        AluCase{"mull2", op::MULL2, 7, 6, 42},
        AluCase{"divl2", op::DIVL2, 7, 42, 6},
        AluCase{"divl2_negative", op::DIVL2,
                static_cast<uint32_t>(-7), 42,
                static_cast<uint32_t>(-6)}),
    [](const ::testing::TestParamInfo<AluCase> &info) {
        return info.param.name;
    });

TEST(Instr, ThreeOperandAlu)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(100), Op::reg(R2)});
    a.instr(op::SUBL3, {Op::imm(42), Op::reg(R2), Op::reg(R3)});
    a.instr(op::ADDL3, {Op::reg(R2), Op::reg(R3), Op::rel("out")});
    a.instr(op::HALT);
    a.align(4);
    a.label("out");
    a.lword(0);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R3), 58u);
    EXPECT_EQ(m.readLong(m.asmblr.addrOf("out")), 158u);
}

TEST(Instr, IncDecTstClrMcomBit)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(5), Op::reg(R1)});
    a.instr(op::INCL, {Op::reg(R1)});
    a.instr(op::INCL, {Op::reg(R1)});
    a.instr(op::DECL, {Op::reg(R1)});
    a.instr(op::MCOML, {Op::reg(R1), Op::reg(R2)});
    a.instr(op::CLRL, {Op::reg(R3)});
    a.instr(op::TSTL, {Op::reg(R3)});
    a.instr(op::BEQL, {Op::branch("z")});
    a.instr(op::MOVL, {Op::imm(999), Op::reg(R4)});
    a.label("z");
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 6u);
    EXPECT_EQ(m.gpr(R2), ~6u);
    EXPECT_EQ(m.gpr(R4), 0u);
}

TEST(Instr, AshlRotl)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(0x1234), Op::reg(R1)});
    a.instr(op::ASHL, {Op::lit(8), Op::reg(R1), Op::reg(R2)});
    a.instr(op::ROTL, {Op::lit(16), Op::reg(R1), Op::reg(R3)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R2), 0x123400u);
    EXPECT_EQ(m.gpr(R3), 0x12340000u);
}

TEST(Instr, MovqClrq)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVQ, {Op::rel("q"), Op::reg(R2)}); // -> R2, R3
    a.instr(op::MOVQ, {Op::reg(R2), Op::rel("out")});
    a.instr(op::CLRQ, {Op::reg(R4)});
    a.instr(op::HALT);
    a.align(4);
    a.label("q");
    a.lword(0x11111111);
    a.lword(0x22222222);
    a.label("out");
    a.space(8);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R2), 0x11111111u);
    EXPECT_EQ(m.gpr(R3), 0x22222222u);
    EXPECT_EQ(m.readLong(a.addrOf("out")), 0x11111111u);
    EXPECT_EQ(m.readLong(a.addrOf("out") + 4), 0x22222222u);
    EXPECT_EQ(m.gpr(R4), 0u);
    EXPECT_EQ(m.gpr(R5), 0u);
}

// ---------------- field instructions ----------------

TEST(Instr, ExtvExtzvRegisterAndMemory)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(0xF0F0A5C3), Op::reg(R2)});
    a.instr(op::EXTZV, {Op::lit(4), Op::lit(8), Op::reg(R2),
                        Op::reg(R1)});
    a.instr(op::EXTV, {Op::lit(12), Op::lit(4), Op::rel("w"),
                       Op::reg(R3)});
    a.instr(op::HALT);
    a.align(4);
    a.label("w");
    a.lword(0x0000F000);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 0x5Cu);
    EXPECT_EQ(m.gpr(R3), 0xFFFFFFFFu); // sign-extended 0xF
}

TEST(Instr, ExtvSpanningTwoLongwords)
{
    BareMachine m;
    auto &a = m.asmblr;
    // Field at bit offset 28, 8 bits: spans w[0] and w[1].
    a.instr(op::EXTZV, {Op::imm(28), Op::lit(8), Op::rel("w"),
                        Op::reg(R1)});
    a.instr(op::HALT);
    a.align(4);
    a.label("w");
    a.lword(0xA0000000);
    a.lword(0x0000005B);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 0xBAu);
}

TEST(Instr, InsvRegisterAndMemory)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::CLRL, {Op::reg(R2)});
    a.instr(op::MOVL, {Op::imm(0x5), Op::reg(R1)});
    a.instr(op::INSV, {Op::reg(R1), Op::lit(8), Op::lit(4),
                       Op::reg(R2)});
    a.instr(op::INSV, {Op::imm(0xAB), Op::lit(4), Op::lit(8),
                       Op::rel("w")});
    a.instr(op::HALT);
    a.align(4);
    a.label("w");
    a.lword(0);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R2), 0x500u);
    EXPECT_EQ(m.readLong(a.addrOf("w")), 0xAB0u);
}

TEST(Instr, FfsFindsFirstSet)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(0x40), Op::reg(R2)});
    a.instr(op::FFS, {Op::lit(0), Op::lit(32), Op::reg(R2),
                      Op::reg(R1)});
    // Not found case: Z set, result = pos+size.
    a.instr(op::CLRL, {Op::reg(R3)});
    a.instr(op::FFS, {Op::lit(0), Op::lit(16), Op::reg(R3),
                      Op::reg(R4)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 6u);
    EXPECT_EQ(m.gpr(R4), 16u);
}

TEST(Instr, BitBranchesTestAndModify)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(0x4), Op::reg(R2)});
    a.instr(op::BBS, {Op::lit(2), Op::reg(R2), Op::branch("was_set")});
    a.instr(op::HALT); // wrong path
    a.label("was_set");
    // BBSC: branch on set and clear it.
    a.instr(op::BBSC, {Op::lit(2), Op::reg(R2),
                       Op::branch("clearing")});
    a.instr(op::HALT); // wrong path
    a.label("clearing");
    // Now bit 2 is clear: BBC should branch; BBSS on memory.
    a.instr(op::BBC, {Op::lit(2), Op::reg(R2), Op::branch("go")});
    a.instr(op::HALT);
    a.label("go");
    a.instr(op::BBSS, {Op::lit(0), Op::rel("flag"),
                       Op::branch("bad")});
    a.instr(op::MOVL, {Op::imm(1), Op::reg(R6)});
    a.label("bad");
    a.instr(op::HALT);
    a.align(4);
    a.label("flag");
    a.lword(0); // bit clear: BBSS does not branch but sets it
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R2), 0u);
    EXPECT_EQ(m.gpr(R6), 1u);
    EXPECT_EQ(m.readLong(a.addrOf("flag")) & 1u, 1u);
}

// ---------------- float / integer multiply-divide ----------------

TEST(Instr, FloatArithmetic)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVF, {Op::imm(doubleToF(2.5)), Op::reg(R2)});
    a.instr(op::ADDF2, {Op::imm(doubleToF(1.25)), Op::reg(R2)});
    a.instr(op::MULF2, {Op::imm(doubleToF(4.0)), Op::reg(R2)});
    a.instr(op::DIVF2, {Op::imm(doubleToF(3.0)), Op::reg(R2)});
    a.instr(op::SUBF3, {Op::imm(doubleToF(1.0)), Op::reg(R2),
                        Op::reg(R3)});
    a.instr(op::MNEGF, {Op::reg(R3), Op::reg(R4)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_NEAR(fToDouble(m.gpr(R2)), 5.0, 1e-5);
    EXPECT_NEAR(fToDouble(m.gpr(R3)), 4.0, 1e-5);
    EXPECT_NEAR(fToDouble(m.gpr(R4)), -4.0, 1e-5);
}

TEST(Instr, FloatCompareAndConvert)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVF, {Op::imm(doubleToF(2.0)), Op::reg(R2)});
    a.instr(op::CMPF, {Op::reg(R2), Op::imm(doubleToF(3.0))});
    a.instr(op::BLSS, {Op::branch("less")});
    a.instr(op::HALT);
    a.label("less");
    a.instr(op::CVTLF, {Op::imm(100), Op::reg(R3)});
    a.instr(op::CVTFL, {Op::reg(R3), Op::reg(R4)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R4), 100u);
}

TEST(Instr, EmulEdiv)
{
    BareMachine m;
    auto &a = m.asmblr;
    // EMUL: 100000 * 100000 + 5 = 10^10 + 5 -> quad in R2/R3.
    a.instr(op::EMUL, {Op::imm(100000), Op::imm(100000), Op::lit(5),
                       Op::reg(R2)});
    // EDIV: quad R2/R3 divided by 100000 -> quotient R4, rem R5.
    a.instr(op::EDIV, {Op::imm(100000), Op::reg(R2), Op::reg(R4),
                       Op::reg(R5)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    uint64_t prod = m.gpr(R2) | (uint64_t(m.gpr(R3)) << 32);
    EXPECT_EQ(prod, 10000000000ULL + 5);
    EXPECT_EQ(m.gpr(R4), 100000u);
    EXPECT_EQ(m.gpr(R5), 5u);
}

// ---------------- queue instructions ----------------

TEST(Instr, InsqueRemque)
{
    BareMachine m;
    auto &a = m.asmblr;
    // Insert e1 then e2 at head; remove from head twice.
    a.instr(op::INSQUE, {Op::rel("e1"), Op::rel("hdr")});
    a.instr(op::INSQUE, {Op::rel("e2"), Op::rel("hdr")});
    a.instr(op::REMQUE, {Op::relDef("hdr"), Op::reg(R1)});
    a.instr(op::REMQUE, {Op::relDef("hdr"), Op::reg(R2)});
    a.instr(op::HALT);
    a.align(4);
    a.label("hdr");
    a.addrLong("hdr");
    a.addrLong("hdr");
    a.label("e1");
    a.lword(0);
    a.lword(0);
    a.label("e2");
    a.lword(0);
    a.lword(0);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), a.addrOf("e2")); // LIFO at head
    EXPECT_EQ(m.gpr(R2), a.addrOf("e1"));
    // Queue empty again: header self-linked.
    EXPECT_EQ(m.readLong(a.addrOf("hdr")), a.addrOf("hdr"));
    EXPECT_EQ(m.readLong(a.addrOf("hdr") + 4), a.addrOf("hdr"));
}

// ---------------- character instructions ----------------

TEST(Instr, Movc5TruncateAndFill)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVC5, {Op::imm(4), Op::rel("src"), Op::lit(42),
                        Op::imm(8), Op::rel("dst")});
    a.instr(op::HALT);
    a.align(4);
    a.label("src");
    a.ascii("ABCDEFGH");
    a.label("dst");
    a.space(8, 0xFF);
    ASSERT_TRUE(m.run());
    auto &phys = m.cpu->mem().phys();
    uint32_t dst = a.addrOf("dst");
    EXPECT_EQ(phys.readByte(dst + 0), 'A');
    EXPECT_EQ(phys.readByte(dst + 3), 'D');
    for (unsigned i = 4; i < 8; ++i)
        EXPECT_EQ(phys.readByte(dst + i), 42u); // fill
}

TEST(Instr, Cmpc3EqualAndUnequal)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::CMPC3, {Op::imm(5), Op::rel("s1"), Op::rel("s2")});
    a.instr(op::BEQL, {Op::branch("eq")});
    a.instr(op::HALT);
    a.label("eq");
    a.instr(op::CMPC3, {Op::imm(5), Op::rel("s1"), Op::rel("s3")});
    a.instr(op::BNEQ, {Op::branch("ne")});
    a.instr(op::HALT);
    a.label("ne");
    a.instr(op::MOVL, {Op::imm(1), Op::reg(R6)});
    a.instr(op::HALT);
    a.align(4);
    a.label("s1");
    a.ascii("hello");
    a.label("s2");
    a.ascii("hello");
    a.label("s3");
    a.ascii("help!");
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R6), 1u);
}

TEST(Instr, LoccSkpcScancSpanc)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::LOCC, {Op::lit(' '), Op::imm(11), Op::rel("s")});
    a.instr(op::MOVL, {Op::reg(R0), Op::reg(R6)}); // remaining
    a.instr(op::MOVL, {Op::reg(R1), Op::reg(R7)}); // location
    a.instr(op::SKPC, {Op::imm('a'), Op::imm(4), Op::rel("aaa")});
    a.instr(op::MOVL, {Op::reg(R0), Op::reg(R8)});
    a.instr(op::SCANC, {Op::imm(11), Op::rel("s"), Op::rel("tbl"),
                        Op::lit(1)});
    a.instr(op::MOVL, {Op::reg(R0), Op::reg(R9)});
    a.instr(op::HALT);
    a.align(4);
    a.label("s");
    a.ascii("hello world");
    a.label("aaa");
    a.ascii("aaab");
    a.align(4);
    a.label("tbl");
    for (unsigned i = 0; i < 256; ++i)
        a.byte(i == 'w' ? 1 : 0);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R6), 6u); // " world" remains at the blank
    EXPECT_EQ(m.gpr(R7), a.addrOf("s") + 5);
    EXPECT_EQ(m.gpr(R8), 1u); // 'b' is the 4th char
    EXPECT_EQ(m.gpr(R9), 5u); // "world" remains at 'w'
}

// ---------------- decimal instructions ----------------

TEST(Instr, DecimalAddSubCompare)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::ADDP4, {Op::imm(9), Op::rel("p1"), Op::imm(9),
                        Op::rel("p2")});
    a.instr(op::CMPP3, {Op::imm(9), Op::rel("p2"), Op::rel("p3")});
    a.instr(op::BEQL, {Op::branch("ok")});
    a.instr(op::HALT);
    a.label("ok");
    a.instr(op::SUBP4, {Op::imm(9), Op::rel("p1"), Op::imm(9),
                        Op::rel("p2")});
    a.instr(op::MOVL, {Op::imm(1), Op::reg(R6)});
    a.instr(op::HALT);
    a.align(4);
    a.label("p1");
    for (uint8_t b : intToPacked(111, 9))
        a.byte(b);
    a.label("p2");
    for (uint8_t b : intToPacked(222, 9))
        a.byte(b);
    a.label("p3");
    for (uint8_t b : intToPacked(333, 9))
        a.byte(b);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R6), 1u);
    // p2 is back to 222 after the subtract.
    std::vector<uint8_t> p2;
    for (unsigned i = 0; i < packedBytes(9); ++i)
        p2.push_back(m.cpu->mem().phys().readByte(a.addrOf("p2") + i));
    EXPECT_EQ(packedToInt(p2, 9), 222);
}

TEST(Instr, DecimalConvertAndShift)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::CVTLP, {Op::imm(12345), Op::imm(9), Op::rel("p")});
    a.instr(op::CVTPL, {Op::imm(9), Op::rel("p"), Op::reg(R6)});
    // ASHP by +2: multiply by 100.
    a.instr(op::ASHP, {Op::lit(2), Op::imm(9), Op::rel("p"),
                       Op::lit(0), Op::imm(9), Op::rel("p2")});
    a.instr(op::CVTPL, {Op::imm(9), Op::rel("p2"), Op::reg(R7)});
    a.instr(op::HALT);
    a.align(4);
    a.label("p");
    a.space(16);
    a.label("p2");
    a.space(16);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R6), 12345u);
    EXPECT_EQ(m.gpr(R7), 1234500u);
}

// ---------------- CALL/RET details ----------------

TEST(Instr, CallgWithArgList)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::CALLG, {Op::rel("args"), Op::rel("proc")});
    a.instr(op::HALT);
    a.label("proc");
    a.entryMask(0);
    a.instr(op::MOVL, {Op::disp(4, AP), Op::reg(R6)});
    a.instr(op::ADDL2, {Op::disp(8, AP), Op::reg(R6)});
    a.instr(op::RET);
    a.align(4);
    a.label("args");
    a.lword(2); // argument count
    a.lword(30);
    a.lword(12);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R6), 42u);
    EXPECT_EQ(m.gpr(SP), 0x20000u); // CALLG pops no args
}

TEST(Instr, NestedCallsPreserveRegisters)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(0x1111), Op::reg(R2)});
    a.instr(op::MOVL, {Op::imm(0x2222), Op::reg(R3)});
    a.instr(op::CALLS, {Op::lit(0), Op::rel("outer")});
    a.instr(op::HALT);
    a.label("outer");
    a.entryMask((1u << 2) | (1u << 3));
    a.instr(op::MOVL, {Op::imm(7), Op::reg(R2)});
    a.instr(op::CALLS, {Op::lit(0), Op::rel("inner")});
    a.instr(op::MOVL, {Op::reg(R2), Op::reg(R7)}); // still 7?
    a.instr(op::RET);
    a.label("inner");
    a.entryMask(1u << 2);
    a.instr(op::MOVL, {Op::imm(99), Op::reg(R2)});
    a.instr(op::RET);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R2), 0x1111u);
    EXPECT_EQ(m.gpr(R3), 0x2222u);
    EXPECT_EQ(m.gpr(R7), 7u);
}

TEST(Instr, PushrPoprRoundTrip)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(11), Op::reg(R2)});
    a.instr(op::MOVL, {Op::imm(22), Op::reg(R5)});
    a.instr(op::MOVL, {Op::imm(33), Op::reg(R7)});
    a.instr(op::PUSHR, {Op::imm((1u << 2) | (1u << 5) | (1u << 7))});
    a.instr(op::CLRL, {Op::reg(R2)});
    a.instr(op::CLRL, {Op::reg(R5)});
    a.instr(op::CLRL, {Op::reg(R7)});
    a.instr(op::POPR, {Op::imm((1u << 2) | (1u << 5) | (1u << 7))});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R2), 11u);
    EXPECT_EQ(m.gpr(R5), 22u);
    EXPECT_EQ(m.gpr(R7), 33u);
    EXPECT_EQ(m.gpr(SP), 0x20000u);
}

// ---------------- loop and case flows ----------------

TEST(Instr, AoblssAobleqAcbl)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::CLRL, {Op::reg(R1)});
    a.instr(op::CLRL, {Op::reg(R2)});
    a.label("l1");
    a.instr(op::INCL, {Op::reg(R1)});
    a.instr(op::AOBLSS, {Op::imm(5), Op::reg(R2),
                         Op::branch("l1")});
    // ACBL with step 2 up to 10.
    a.instr(op::CLRL, {Op::reg(R3)});
    a.instr(op::CLRL, {Op::reg(R4)});
    a.label("l2");
    a.instr(op::INCL, {Op::reg(R4)});
    a.instr(op::ACBL, {Op::imm(10), Op::imm(2), Op::reg(R3),
                       Op::branch("l2")});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 5u);
    EXPECT_EQ(m.gpr(R2), 5u);
    EXPECT_EQ(m.gpr(R4), 6u); // 0,2,4,6,8,10: six passes
}

TEST(Instr, CaseFallThrough)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(9), Op::reg(R0)}); // beyond limit
    a.instr(op::CASEL, {Op::reg(R0), Op::lit(0), Op::lit(1)});
    a.caseTable({"c0", "c1"});
    a.instr(op::MOVL, {Op::imm(77), Op::reg(R1)}); // fall-through
    a.instr(op::HALT);
    a.label("c0");
    a.instr(op::HALT);
    a.label("c1");
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 77u);
}

TEST(Instr, JmpAndJsbThroughMemory)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::JSB, {Op::rel("sub")});
    a.instr(op::JMP, {Op::rel("end")});
    a.instr(op::HALT); // skipped
    a.label("sub");
    a.instr(op::MOVL, {Op::imm(3), Op::reg(R6)});
    a.instr(op::RSB);
    a.label("end");
    a.instr(op::MOVL, {Op::imm(4), Op::reg(R7)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R6), 3u);
    EXPECT_EQ(m.gpr(R7), 4u);
}

// ---------------- unaligned access ----------------

TEST(Instr, UnalignedLongReadWrite)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVAB, {Op::rel("buf"), Op::reg(R2)});
    a.instr(op::MOVL, {Op::imm(0xCAFEBABE), Op::disp(1, R2)});
    a.instr(op::MOVL, {Op::disp(1, R2), Op::reg(R1)});
    a.instr(op::HALT);
    a.align(4);
    a.label("buf");
    a.space(12);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 0xCAFEBABEu);
    EXPECT_EQ(m.cpu->hw().unalignedRefs, 2u);
    // Byte-precise placement.
    EXPECT_EQ(m.cpu->mem().phys().readByte(a.addrOf("buf") + 1),
              0xBEu);
    EXPECT_EQ(m.cpu->mem().phys().readByte(a.addrOf("buf") + 4),
              0xCAu);
}

TEST(Instr, MovabPushab)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVAB, {Op::rel("spot"), Op::reg(R1)});
    a.instr(op::PUSHAB, {Op::rel("spot")});
    a.instr(op::MOVL, {Op::autoInc(SP), Op::reg(R2)});
    a.instr(op::HALT);
    a.label("spot");
    a.byte(0);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), a.addrOf("spot"));
    EXPECT_EQ(m.gpr(R2), a.addrOf("spot"));
}

} // namespace vax::test
