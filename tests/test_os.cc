/**
 * @file
 * Integration tests of VMS-lite: boot, timesharing between processes,
 * system services, terminal wakeups, context switches, and the Null-
 * process monitor gating.
 */

#include <gtest/gtest.h>

#include "arch/assembler.hh"
#include "cpu/cpu.hh"
#include "os/abi.hh"
#include "os/vms.hh"
#include "upc/analyzer.hh"
#include "upc/monitor.hh"

namespace vax::test
{

using Op = Operand;

namespace
{

/** A user program: busy loop, syscalls, then wait for the terminal. */
UserProgram
makeUserProgram(unsigned terminal, bool with_wait)
{
    Assembler a(0);
    a.instr(op::BRW, {Op::branch("entry")});
    a.align(4);
    a.label("counter");
    a.lword(0);
    a.label("buf");
    a.space(32);
    a.label("entry");
    a.label("loop");
    // Visible progress marker.
    a.instr(op::INCL, {Op::rel("counter")});
    // Some computation.
    a.instr(op::MOVL, {Op::imm(50), Op::reg(R3)});
    a.instr(op::CLRL, {Op::reg(R6)});
    a.label("inner");
    a.instr(op::ADDL2, {Op::reg(R3), Op::reg(R6)});
    a.instr(op::SOBGTR, {Op::reg(R3), Op::branch("inner")});
    // Services.
    a.instr(op::CHMK, {Op::imm(abi::sysGetTime)});
    a.instr(op::MOVAB, {Op::rel("buf"), Op::reg(R1)});
    a.instr(op::CHMK, {Op::imm(abi::sysGets)});
    a.instr(op::MOVAB, {Op::rel("buf"), Op::reg(R1)});
    a.instr(op::MOVL, {Op::imm(16), Op::reg(R2)});
    a.instr(op::CHMK, {Op::imm(abi::sysPuts)});
    if (with_wait)
        a.instr(op::CHMK, {Op::imm(abi::sysWaitTerm)});
    a.instr(op::BRW, {Op::branch("loop")});

    UserProgram prog;
    prog.entry = a.addrOf("entry");
    prog.image = a.finish();
    prog.terminalId = terminal;
    return prog;
}

} // anonymous namespace

TEST(VmsLite, BootAndTimeshare)
{
    Cpu780 cpu;
    UpcMonitor monitor;
    cpu.setCycleSink(&monitor);

    VmsConfig cfg;
    cfg.timerIntervalCycles = 5000;
    cfg.quantumTicks = 2;
    VmsLite os(cpu, monitor, cfg);
    os.addProcess(makeUserProgram(0, false));
    os.addProcess(makeUserProgram(1, false));
    os.boot();

    cpu.run(400000);
    ASSERT_FALSE(cpu.halted());

    // Both processes made progress.
    uint32_t counter_off = 4; // after the leading BRW + align
    uint32_t c0 =
        cpu.mem().phys().read(os.processImagePa(0) + counter_off, 4);
    uint32_t c1 =
        cpu.mem().phys().read(os.processImagePa(1) + counter_off, 4);
    EXPECT_GT(c0, 0u);
    EXPECT_GT(c1, 0u);

    // The clock ticked and context switches happened.
    EXPECT_GT(os.ticks(), 10u);
    EXPECT_GT(cpu.hw().contextSwitches, 5u);
    EXPECT_GT(cpu.hw().interrupts, 10u);
    EXPECT_GT(cpu.hw().chmkCalls, 0u);
}

TEST(VmsLite, TerminalWaitAndWake)
{
    Cpu780 cpu;
    UpcMonitor monitor;
    cpu.setCycleSink(&monitor);

    VmsConfig cfg;
    cfg.timerIntervalCycles = 5000;
    VmsLite os(cpu, monitor, cfg);
    os.addProcess(makeUserProgram(7, true));
    os.boot();

    // Let the process run until it blocks on the terminal.
    cpu.run(120000);
    uint32_t c_before =
        cpu.mem().phys().read(os.processImagePa(0) + 4, 4);
    EXPECT_GT(c_before, 0u);

    // With no input it must stay blocked (Null process running,
    // monitor gated off).
    cpu.run(100000);
    uint32_t c_idle =
        cpu.mem().phys().read(os.processImagePa(0) + 4, 4);
    EXPECT_EQ(c_idle, c_before);
    EXPECT_FALSE(monitor.collecting());

    // Wake it through the terminal; it should advance again.
    os.postTerminalLine(7);
    cpu.run(200000);
    uint32_t c_after =
        cpu.mem().phys().read(os.processImagePa(0) + 4, 4);
    EXPECT_GT(c_after, c_before);
}

TEST(VmsLite, HistogramSeesOsEvents)
{
    Cpu780 cpu;
    UpcMonitor monitor;
    cpu.setCycleSink(&monitor);

    VmsConfig cfg;
    cfg.timerIntervalCycles = 4000;
    cfg.quantumTicks = 2;
    VmsLite os(cpu, monitor, cfg);
    os.addProcess(makeUserProgram(0, false));
    os.addProcess(makeUserProgram(1, false));
    os.boot();
    cpu.run(500000);

    HistogramAnalyzer an(cpu.controlStore(), monitor.histogram());
    EXPECT_GT(an.instructions(), 10000u);
    // Interrupt and context-switch headways are finite and sane.
    EXPECT_GT(an.headwayInterrupts(), 10.0);
    EXPECT_GT(an.headwayContextSwitches(), an.headwayInterrupts());
    // The SYSTEM group appears (CHMK/REI/MTPR/LDPCTX...).
    EXPECT_GT(an.groupFraction(Group::System), 0.0);
    // Table 8 sanity: the total equals cycles/instruction.
    double total = 0.0;
    for (size_t r = 0; r < static_cast<size_t>(Row::NumRows); ++r)
        total += an.rowTotal(static_cast<Row>(r));
    EXPECT_NEAR(total, an.cyclesPerInstruction(), 1e-9);
    EXPECT_GT(an.cyclesPerInstruction(), 4.0);
    EXPECT_LT(an.cyclesPerInstruction(), 40.0);
}

} // namespace vax::test
