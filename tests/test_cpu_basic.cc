/**
 * @file
 * End-to-end smoke tests of the CPU: small assembled programs run to
 * HALT and architectural state is checked.
 */

#include <gtest/gtest.h>

#include "tests/sim_test_util.hh"

namespace vax::test
{

using Op = Operand;

TEST(CpuBasic, MovAndAdd)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(5), Op::reg(R1)});
    a.instr(op::ADDL2, {Op::imm(3), Op::reg(R1)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 8u);
}

TEST(CpuBasic, LiteralAndRegisterModes)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::lit(42), Op::reg(R2)});
    a.instr(op::MOVL, {Op::reg(R2), Op::reg(R3)});
    a.instr(op::SUBL3, {Op::lit(2), Op::reg(R3), Op::reg(R4)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R2), 42u);
    EXPECT_EQ(m.gpr(R3), 42u);
    EXPECT_EQ(m.gpr(R4), 40u);
}

TEST(CpuBasic, MemoryReadWrite)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(0x3000), Op::reg(R0)});
    a.instr(op::MOVL, {Op::imm(0xDEADBEEF), Op::regDef(R0)});
    a.instr(op::MOVL, {Op::regDef(R0), Op::reg(R1)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.readLong(0x3000), 0xDEADBEEFu);
    EXPECT_EQ(m.gpr(R1), 0xDEADBEEFu);
}

TEST(CpuBasic, LoopWithSobgtr)
{
    // Sum 1..10 with a SOBGTR loop.
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::CLRL, {Op::reg(R1)});
    a.instr(op::MOVL, {Op::imm(10), Op::reg(R2)});
    a.label("loop");
    a.instr(op::ADDL2, {Op::reg(R2), Op::reg(R1)});
    a.instr(op::SOBGTR, {Op::reg(R2), Op::branch("loop")});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 55u);
    EXPECT_EQ(m.gpr(R2), 0u);
}

TEST(CpuBasic, ConditionalBranches)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(7), Op::reg(R0)});
    a.instr(op::CMPL, {Op::reg(R0), Op::imm(7)});
    a.instr(op::BEQL, {Op::branch("eq")});
    a.instr(op::MOVL, {Op::imm(111), Op::reg(R1)});
    a.instr(op::HALT);
    a.label("eq");
    a.instr(op::MOVL, {Op::imm(222), Op::reg(R1)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 222u);
}

TEST(CpuBasic, SubroutineLinkage)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::BSBW, {Op::branch("sub")});
    a.instr(op::MOVL, {Op::imm(5), Op::reg(R2)});
    a.instr(op::HALT);
    a.label("sub");
    a.instr(op::MOVL, {Op::imm(9), Op::reg(R1)});
    a.instr(op::RSB);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 9u);
    EXPECT_EQ(m.gpr(R2), 5u);
}

TEST(CpuBasic, ProcedureCallReturn)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::PUSHL, {Op::imm(21)});
    a.instr(op::CALLS, {Op::imm(1), Op::rel("proc")});
    a.instr(op::HALT);
    a.label("proc");
    a.entryMask(1u << 2 | 1u << 3); // save R2, R3
    a.instr(op::MOVL, {Op::disp(4, AP), Op::reg(R0)});
    a.instr(op::ADDL2, {Op::reg(R0), Op::reg(R0)});
    a.instr(op::MOVL, {Op::imm(77), Op::reg(R2)}); // clobber saved reg
    a.instr(op::RET);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R0), 42u);
    EXPECT_EQ(m.gpr(R2), 0u); // restored by RET
    EXPECT_EQ(m.gpr(SP), 0x20000u); // stack fully popped
}

TEST(CpuBasic, CharacterMove)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVC3, {Op::imm(16), Op::rel("src"), Op::rel("dst")});
    a.instr(op::HALT);
    a.align(4);
    a.label("src");
    a.ascii("hello, vax-11/78");
    a.align(4);
    a.label("dst");
    a.space(16);
    ASSERT_TRUE(m.run());
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(m.cpu->mem().phys().readByte(
                      m.asmblr.addrOf("dst") + i),
                  m.cpu->mem().phys().readByte(
                      m.asmblr.addrOf("src") + i));
    }
    EXPECT_EQ(m.gpr(R0), 0u);
}

TEST(CpuBasic, CaseBranch)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(1), Op::reg(R0)});
    a.instr(op::CASEL, {Op::reg(R0), Op::lit(0), Op::lit(2)});
    a.caseTable({"case0", "case1", "case2"});
    a.instr(op::MOVL, {Op::imm(99), Op::reg(R1)}); // fall-through
    a.instr(op::HALT);
    a.label("case0");
    a.instr(op::MOVL, {Op::imm(10), Op::reg(R1)});
    a.instr(op::HALT);
    a.label("case1");
    a.instr(op::MOVL, {Op::imm(11), Op::reg(R1)});
    a.instr(op::HALT);
    a.label("case2");
    a.instr(op::MOVL, {Op::imm(12), Op::reg(R1)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.gpr(R1), 11u);
}

TEST(CpuBasic, MonitorCountsInstructions)
{
    BareMachine m;
    auto &a = m.asmblr;
    for (int i = 0; i < 10; ++i)
        a.instr(op::MOVL, {Op::lit(1), Op::reg(R1)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    uint64_t iid = m.monitor.normalCount(
        m.cpu->controlStore().entries.iid);
    EXPECT_EQ(iid, 11u); // 10 moves + HALT
    EXPECT_EQ(m.cpu->hw().instructions, 11u);
}

} // namespace vax::test
