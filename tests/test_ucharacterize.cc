/**
 * @file
 * The per-instruction characterization suite: corpus coverage
 * (no-silent-skips contract), assembler<->disassembler round-trip over
 * the full generated opcode x specifier product, serial-vs-pooled
 * determinism, baseline JSON round-trip, and the zero-tolerance
 * comparer failing on a perturbed microword count.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "arch/disasm.hh"
#include "arch/opcodes.hh"
#include "driver/sim_pool.hh"
#include "upc/ucharacterize.hh"
#include "workload/uchar_corpus.hh"

namespace vax::test
{

namespace
{

/** Small corpus + short loop so suite-running tests stay fast. */
UcharParams
smallParams()
{
    UcharParams p;
    p.iters = 4;
    return p;
}

UcharSuiteOptions
smallOpts()
{
    UcharSuiteOptions o;
    o.opcodeFilter = "MOVL,ADDL3,JMP,CALLS,RET,SOBGTR,EXTV,INSQUE";
    return o;
}

/** The small-corpus serial run, computed once for the whole file. */
const UcharReport &
smallReport()
{
    static const UcharReport rep =
        runUcharSuite(smallParams(), {}, smallOpts());
    return rep;
}

} // anonymous namespace

TEST(Ucharacterize, CorpusCoversEveryImplementedOpcode)
{
    auto variants = ucharEnumerate(UcharParams{});

    // Every implemented opcode appears in the product, and every cell
    // is either runnable or carries a reason -- nothing vanishes.
    std::set<std::string> seen;
    for (const auto &v : variants) {
        seen.insert(v.op);
        if (v.runnable) {
            EXPECT_FALSE(v.prog.image.empty()) << v.op << " " << v.mode;
            EXPECT_FALSE(v.prog.targetOffsets.empty())
                << v.op << " " << v.mode;
            EXPECT_GT(v.prog.expectedInstructions, 0u)
                << v.op << " " << v.mode;
        } else {
            EXPECT_FALSE(v.skipReason.empty()) << v.op << " " << v.mode;
        }
    }
    for (unsigned opc = 0; opc < 256; ++opc) {
        const OpcodeInfo &info = opcodeInfo(static_cast<uint8_t>(opc));
        if (info.valid) {
            EXPECT_TRUE(seen.count(info.mnemonic))
                << info.mnemonic << " missing from the product";
        }
    }
}

TEST(Ucharacterize, DisasmRoundTripOverFullCorpus)
{
    auto variants = ucharEnumerate(UcharParams{});
    size_t checked = 0;
    for (const auto &v : variants) {
        if (!v.runnable)
            continue;
        const UcharProgram &prog = v.prog;
        ByteReader read = [&prog](VirtAddr addr) -> uint8_t {
            uint64_t off = addr - prog.base;
            return off < prog.image.size() ? prog.image[off] : 0;
        };
        // Every measured-instruction copy must disassemble back to
        // the mnemonic the generator intended to emit there.
        for (uint32_t off : prog.targetOffsets) {
            DisasmResult d = disassemble(prog.base + off, read);
            ASSERT_TRUE(d.valid) << v.op << " " << v.mode
                                 << " @+" << off;
            ASSERT_GT(d.length, 0u) << v.op << " " << v.mode;
            bool match = d.text == v.op ||
                d.text.compare(0, v.op.size() + 1, v.op + " ") == 0;
            EXPECT_TRUE(match)
                << v.op << " " << v.mode << " disassembled as '"
                << d.text << "'";
            ++checked;
        }
    }
    // The product is in the thousands of cells; make sure the loop
    // actually exercised it rather than vacuously passing.
    EXPECT_GT(checked, 1000u);
}

TEST(Ucharacterize, DeterminismSerialVsPooled)
{
    const UcharReport &serial = smallReport();

    SimPool pool(4);
    ParallelFor pf = [&pool](size_t n,
                             const std::function<void(size_t)> &fn) {
        pool.forEach(n, fn);
    };
    UcharReport pooled = runUcharSuite(smallParams(), pf, smallOpts());

    EXPECT_EQ(ucharJson(serial), ucharJson(pooled));
    EXPECT_EQ(ucharText(serial), ucharText(pooled));
    EXPECT_EQ(ucharCsv(serial), ucharCsv(pooled));
}

TEST(Ucharacterize, BaselineJsonRoundTrip)
{
    const UcharReport &rep = smallReport();
    ASSERT_FALSE(rep.rows.empty());

    std::string json = ucharJson(rep);
    UcharReport parsed;
    std::string err;
    ASSERT_TRUE(ucharParseJson(json, &parsed, &err)) << err;

    // Parse -> re-serialize is byte-identical, and the comparer agrees
    // the round-tripped report is the same report.
    EXPECT_EQ(json, ucharJson(parsed));
    EXPECT_TRUE(ucharCompare(rep, parsed).ok());
    EXPECT_TRUE(ucharCompare(parsed, rep).ok());
}

TEST(Ucharacterize, PerturbedUwordCountFailsCompare)
{
    const UcharReport &rep = smallReport();
    ASSERT_FALSE(rep.rows.empty());

    UcharReport perturbed = rep;
    perturbed.rows[0].run.uwords += 8;

    UcharDiff diff = ucharCompare(rep, perturbed);
    ASSERT_FALSE(diff.ok());
    ASSERT_EQ(diff.messages.size(), 1u);
    // The failure names the opcode and the field, so a CI log is
    // actionable without rerunning anything.
    EXPECT_NE(diff.messages[0].find(rep.rows[0].op), std::string::npos)
        << diff.messages[0];
    EXPECT_NE(diff.messages[0].find("uwords"), std::string::npos)
        << diff.messages[0];
}

TEST(Ucharacterize, MissingAndExtraRowsAreNamed)
{
    const UcharReport &rep = smallReport();
    ASSERT_GE(rep.rows.size(), 2u);

    UcharReport current = rep;
    UcharRow dropped = current.rows.front();
    current.rows.erase(current.rows.begin());

    UcharDiff diff = ucharCompare(rep, current);
    ASSERT_FALSE(diff.ok());
    bool named = false;
    for (const auto &m : diff.messages)
        if (m.find(dropped.op) != std::string::npos)
            named = true;
    EXPECT_TRUE(named) << "dropped row " << dropped.op
                       << " not named in the diff";
}

} // namespace vax::test
