/**
 * @file
 * Cycle-level timing and UPC-accounting tests: stall durations match
 * the 11/780 model, the monitor is passive, and every cycle lands in
 * exactly one histogram bucket with a valid classification.
 */

#include <gtest/gtest.h>

#include "tests/sim_test_util.hh"
#include "upc/analyzer.hh"

namespace vax::test
{

using Op = Operand;

namespace
{

/** Cycles to run an image to HALT (no monitor required). */
uint64_t
cyclesToHalt(Assembler &a, Cpu780 &cpu, CycleSink *sink = nullptr)
{
    auto image = a.finish();
    cpu.mem().setMapEnable(false);
    cpu.mem().phys().load(a.base(), image);
    if (sink)
        cpu.setCycleSink(sink);
    cpu.reset(a.base());
    cpu.ebox().setGpr(SP, 0x20000);
    EXPECT_TRUE(cpu.run(1000000));
    return cpu.cycles();
}

} // anonymous namespace

TEST(Timing, ReadMissCostsPenaltyOverHit)
{
    // Two identical reads of the same longword: the first misses,
    // the second hits; their cycle difference is the miss penalty.
    auto build = [](bool twice) {
        auto a = std::make_unique<Assembler>(0x1000);
        a->instr(op::MOVL, {Op::imm(0x8000), Op::reg(R2)});
        a->instr(op::MOVL, {Op::regDef(R2), Op::reg(R1)});
        if (twice)
            a->instr(op::MOVL, {Op::regDef(R2), Op::reg(R1)});
        a->instr(op::HALT);
        return a;
    };
    Cpu780 c1, c2;
    auto a1 = build(false), a2 = build(true);
    uint64_t one = cyclesToHalt(*a1, c1);
    uint64_t two = cyclesToHalt(*a2, c2);
    // The second (hitting) read instruction adds hit-cost cycles only:
    // decode + spec read (2 cycles: issue+move) + store. No stall.
    uint64_t hit_cost = two - one;
    EXPECT_LE(hit_cost, 6u);

    // Now a version whose second read misses (different block, cold).
    Cpu780 c3;
    auto a3 = std::make_unique<Assembler>(0x1000);
    a3->instr(op::MOVL, {Op::imm(0x8000), Op::reg(R2)});
    a3->instr(op::MOVL, {Op::regDef(R2), Op::reg(R1)});
    a3->instr(op::MOVL, {Op::disp(0x100, R2), Op::reg(R1)});
    a3->instr(op::HALT);
    uint64_t miss = cyclesToHalt(*a3, c3);
    EXPECT_EQ(miss - two, c3.mem().config().readMissPenalty);
}

TEST(Timing, BackToBackWritesStall)
{
    // Two writes far apart in time don't stall; adjacent ones do.
    auto build = [](bool pad) {
        auto a = std::make_unique<Assembler>(0x1000);
        a->instr(op::MOVL, {Op::imm(0x8000), Op::reg(R2)});
        a->instr(op::MOVL, {Op::imm(1), Op::regDef(R2)});
        if (pad) {
            for (int i = 0; i < 8; ++i)
                a->instr(op::INCL, {Op::reg(R3)});
        }
        a->instr(op::MOVL, {Op::imm(2), Op::disp(4, R2)});
        if (!pad) {
            for (int i = 0; i < 8; ++i)
                a->instr(op::INCL, {Op::reg(R3)});
        }
        a->instr(op::HALT);
        return a;
    };
    Cpu780 c1, c2;
    auto a1 = build(true), a2 = build(false);
    uint64_t spaced = cyclesToHalt(*a1, c1);
    uint64_t adjacent = cyclesToHalt(*a2, c2);
    // Same instructions, different order: the adjacent version pays
    // write-buffer stalls.
    EXPECT_GT(adjacent, spaced);
    EXPECT_LE(adjacent - spaced, c2.mem().config().writeDrainCycles);
}

TEST(Timing, MonitorIsPassive)
{
    // Identical machines, one monitored: cycle-for-cycle identical.
    auto build = []() {
        auto a = std::make_unique<Assembler>(0x1000);
        a->instr(op::MOVL, {Op::imm(30), Op::reg(R3)});
        a->label("l");
        a->instr(op::ADDL2, {Op::rel("d"), Op::reg(R1)});
        a->instr(op::SOBGTR, {Op::reg(R3), Op::branch("l")});
        a->instr(op::HALT);
        a->align(4);
        a->label("d");
        a->lword(3);
        return a;
    };
    Cpu780 plain, monitored;
    UpcMonitor mon;
    auto a1 = build(), a2 = build();
    uint64_t c_plain = cyclesToHalt(*a1, plain);
    uint64_t c_mon = cyclesToHalt(*a2, monitored, &mon);
    EXPECT_EQ(c_plain, c_mon);
    EXPECT_EQ(plain.ebox().gpr(R1), monitored.ebox().gpr(R1));
    EXPECT_EQ(mon.histogram().cycles(), c_mon);
}

TEST(Timing, EveryCycleIsClassified)
{
    BareMachine m;
    auto &a = m.asmblr;
    // R7 survives MOVC3 (which clobbers R0-R5).
    a.instr(op::MOVL, {Op::imm(20), Op::reg(R7)});
    a.label("l");
    a.instr(op::MOVC3, {Op::imm(24), Op::rel("s"), Op::rel("d")});
    a.instr(op::CALLS, {Op::lit(0), Op::rel("p")});
    a.instr(op::SOBGTR, {Op::reg(R7), Op::branch("l")});
    a.instr(op::HALT);
    a.label("p");
    a.entryMask(1u << 2 | 1u << 3 | 1u << 4);
    a.instr(op::MULL2, {Op::imm(17), Op::reg(R2)});
    a.instr(op::RET);
    a.align(4);
    a.label("s");
    a.ascii("abcdefghijklmnopqrstuvwx");
    a.label("d");
    a.space(24);
    ASSERT_TRUE(m.run());

    // Row x column totals equal the machine's cycle count exactly
    // (the analyzer panics on any unclassifiable stall).
    HistogramAnalyzer an(m.cpu->controlStore(), m.monitor.histogram());
    EXPECT_EQ(an.totalCycles(), m.cpu->cycles());
    double sum = 0;
    for (unsigned r = 0; r < static_cast<unsigned>(Row::NumRows); ++r)
        sum += an.rowTotal(static_cast<Row>(r));
    EXPECT_NEAR(sum, an.cyclesPerInstruction(), 1e-9);
    double csum = 0;
    for (unsigned c = 0;
         c < static_cast<unsigned>(TimeCol::NumCols); ++c)
        csum += an.colTotal(static_cast<TimeCol>(c));
    EXPECT_NEAR(csum, an.cyclesPerInstruction(), 1e-9);
}

TEST(Timing, DecodeRowComputeIsExactlyOnePerInstruction)
{
    BareMachine m;
    auto &a = m.asmblr;
    for (int i = 0; i < 25; ++i)
        a.instr(op::ADDL2, {Op::lit(1), Op::reg(R1)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    HistogramAnalyzer an(m.cpu->controlStore(), m.monitor.histogram());
    EXPECT_DOUBLE_EQ(an.cell(Row::Decode, TimeCol::Compute), 1.0);
}

TEST(Timing, ReadCountsMatchHardware)
{
    BareMachine m;
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(40), Op::reg(R3)});
    a.instr(op::MOVL, {Op::imm(0x9000), Op::reg(R2)});
    a.label("l");
    a.instr(op::MOVL, {Op::regDef(R2), Op::reg(R1)});
    a.instr(op::MOVL, {Op::reg(R1), Op::disp(0x80, R2)});
    a.instr(op::SOBGTR, {Op::reg(R3), Op::branch("l")});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    HistogramAnalyzer an(m.cpu->controlStore(), m.monitor.histogram());
    // Histogram-derived reads/writes equal the memory system's
    // hardware counts (every issued operation is one normal cycle of
    // a memory microword).
    uint64_t instr = an.instructions();
    EXPECT_EQ(static_cast<uint64_t>(
                  an.totalReadsPerInstr() * instr + 0.5),
              m.cpu->mem().dataReads());
    EXPECT_EQ(static_cast<uint64_t>(
                  an.totalWritesPerInstr() * instr + 0.5),
              m.cpu->mem().dataWrites());
}

TEST(Timing, TakenBranchCostsTwoExtraCycles)
{
    // Not-taken: 1 execute cycle.  Taken: bdisp fetch + redirect.
    auto build = [](bool taken) {
        auto a = std::make_unique<Assembler>(0x1000);
        a->instr(op::MOVL, {Op::imm(1), Op::reg(R1)});
        a->instr(op::TSTL, {Op::reg(R1)});
        // BNEQ taken, BEQL not taken (same shape).
        a->instr(taken ? op::BNEQ : op::BEQL,
                 {Op::branch("next")});
        a->label("next");
        a->instr(op::HALT);
        return a;
    };
    Cpu780 c1, c2;
    auto a1 = build(false), a2 = build(true);
    uint64_t nt = cyclesToHalt(*a1, c1);
    uint64_t tk = cyclesToHalt(*a2, c2);
    // Taken costs the B-DISP cycle + redirect cycle, plus refill
    // effects; branching to the next instruction refetches it.
    EXPECT_GT(tk, nt);
    EXPECT_LE(tk - nt, 8u);
}

TEST(Timing, MonitorGatingStopsCounting)
{
    BareMachine m;
    auto &a = m.asmblr;
    for (int i = 0; i < 10; ++i)
        a.instr(op::INCL, {Op::reg(R1)});
    a.instr(op::HALT);
    auto image = a.finish();
    m.cpu->mem().phys().load(a.base(), image);
    m.cpu->reset(a.base());
    m.cpu->ebox().setGpr(SP, 0x20000);
    m.monitor.stop();
    m.cpu->run(100000);
    EXPECT_EQ(m.monitor.histogram().cycles(), 0u);
    EXPECT_GT(m.cpu->cycles(), 0u);
}

TEST(Timing, AbortCyclesMatchMicrotraps)
{
    BareMachine m;
    auto &a = m.asmblr;
    // Unaligned accesses cause microtraps; each costs one abort cycle.
    a.instr(op::MOVL, {Op::imm(0x8001), Op::reg(R2)});
    a.instr(op::MOVL, {Op::imm(5), Op::regDef(R2)});
    a.instr(op::MOVL, {Op::regDef(R2), Op::reg(R1)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    uint64_t aborts =
        m.monitor.normalCount(m.cpu->controlStore().entries.abort);
    EXPECT_EQ(aborts, m.cpu->hw().microTraps);
    EXPECT_GE(aborts, 2u);
}

} // namespace vax::test
