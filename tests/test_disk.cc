/**
 * @file
 * Disk-device tests: the CHMK disk service blocks the process, the
 * controller callback fires with the right process index, and the
 * completion interrupt wakes the process.
 */

#include <gtest/gtest.h>

#include "arch/assembler.hh"
#include "cpu/cpu.hh"
#include "os/abi.hh"
#include "os/vms.hh"
#include "upc/monitor.hh"
#include "workload/experiments.hh"

namespace vax::test
{

using Op = Operand;

namespace
{

UserProgram
diskLoopProgram()
{
    Assembler a(0);
    a.lword(0);
    a.label("count");
    a.lword(0);
    a.label("entry");
    a.label("loop");
    a.instr(op::INCL, {Op::rel("count")});
    a.instr(op::CHMK, {Op::imm(abi::sysDiskRead)});
    a.instr(op::BRB, {Op::branch("loop")});
    UserProgram prog;
    prog.entry = a.addrOf("entry");
    prog.image = a.finish();
    return prog;
}

} // anonymous namespace

TEST(Disk, RequestBlocksUntilCompletion)
{
    Cpu780 cpu;
    UpcMonitor monitor;
    cpu.setCycleSink(&monitor);
    VmsLite os(cpu, monitor);
    os.addProcess(diskLoopProgram());

    std::vector<uint32_t> requests;
    os.onDiskRequest([&](uint32_t proc) { requests.push_back(proc); });
    os.boot();

    cpu.run(60000);
    // Exactly one request from process 0, then blocked.
    ASSERT_EQ(requests.size(), 1u);
    EXPECT_EQ(requests[0], 0u);
    uint32_t before =
        cpu.mem().phys().read(os.processImagePa(0) + 4, 4);
    EXPECT_EQ(before, 1u);

    // Stays blocked without a completion.
    cpu.run(60000);
    EXPECT_EQ(cpu.mem().phys().read(os.processImagePa(0) + 4, 4),
              before);
    ASSERT_EQ(requests.size(), 1u);

    // Completion wakes it; it issues the next transfer.
    os.postDiskCompletion(0);
    cpu.run(60000);
    EXPECT_GT(cpu.mem().phys().read(os.processImagePa(0) + 4, 4),
              before);
    EXPECT_EQ(requests.size(), 2u);
}

TEST(Disk, CompletionsWakeTheRightProcess)
{
    Cpu780 cpu;
    UpcMonitor monitor;
    cpu.setCycleSink(&monitor);
    VmsLite os(cpu, monitor);
    os.addProcess(diskLoopProgram());
    os.addProcess(diskLoopProgram());
    os.addProcess(diskLoopProgram());

    std::vector<uint32_t> requests;
    os.onDiskRequest([&](uint32_t proc) { requests.push_back(proc); });
    os.boot();
    cpu.run(150000);
    // All three requested once and blocked.
    ASSERT_EQ(requests.size(), 3u);

    // Wake only process 1.
    os.postDiskCompletion(1);
    cpu.run(100000);
    uint32_t c0 = cpu.mem().phys().read(os.processImagePa(0) + 4, 4);
    uint32_t c1 = cpu.mem().phys().read(os.processImagePa(1) + 4, 4);
    uint32_t c2 = cpu.mem().phys().read(os.processImagePa(2) + 4, 4);
    EXPECT_EQ(c0, 1u);
    EXPECT_EQ(c1, 2u); // progressed
    EXPECT_EQ(c2, 1u);
}

TEST(Disk, ExperimentCountsTransfers)
{
    WorkloadProfile prof = commercialProfile();
    prof.numUsers = 6;
    ExperimentResult r = runExperiment(prof, 250000);
    // The commercial load does transactional I/O: some disk traffic
    // must have flowed and completed.
    EXPECT_GT(r.hw.diskTransfers, 0u);
}

} // namespace vax::test
