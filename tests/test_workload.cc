/**
 * @file
 * Workload-layer tests: generator determinism and validity, profile
 * sanity, experiment invariants, and composite accounting.
 */

#include <gtest/gtest.h>

#include "upc/analyzer.hh"
#include "workload/codegen.hh"
#include "workload/experiments.hh"

namespace vax::test
{

TEST(Codegen, Deterministic)
{
    WorkloadProfile p = educationalProfile();
    CodeGenerator g1(p, 42), g2(p, 42);
    UserProgram a = g1.generate(0), b = g2.generate(0);
    EXPECT_EQ(a.entry, b.entry);
    EXPECT_EQ(a.image, b.image);
}

TEST(Codegen, SeedsChangePrograms)
{
    WorkloadProfile p = educationalProfile();
    CodeGenerator g1(p, 1), g2(p, 2);
    EXPECT_NE(g1.generate(0).image, g2.generate(0).image);
}

TEST(Codegen, ImageFitsProcessRegion)
{
    for (const auto &p : allProfiles()) {
        CodeGenerator gen(p, p.seed);
        UserProgram prog = gen.generate(0);
        // Must fit under the user stack in the default P0 region.
        VmsConfig vc;
        EXPECT_LT(prog.image.size(),
                  static_cast<size_t>(vc.userP0Pages) * pageBytes -
                      0x4000)
            << p.name;
        EXPECT_GT(prog.image.size(), 10000u) << p.name;
        EXPECT_LT(prog.entry, prog.image.size());
    }
}

class ProfileRunTest
    : public ::testing::TestWithParam<int>
{
};

TEST_P(ProfileRunTest, RunsWithoutFaulting)
{
    auto profiles = allProfiles();
    WorkloadProfile prof = profiles[GetParam()];
    prof.numUsers = 4; // keep the test fast
    ExperimentResult r = runExperiment(prof, 150000);
    Cpu780 ref;
    HistogramAnalyzer an(ref.controlStore(), r.hist);
    EXPECT_GT(an.instructions(), 5000u) << prof.name;
    EXPECT_GT(an.cyclesPerInstruction(), 4.0);
    EXPECT_LT(an.cyclesPerInstruction(), 25.0);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileRunTest,
                         ::testing::Range(0, 5));

TEST(Experiments, CompositeSumsParts)
{
    CompositeResult comp = runComposite(60000);
    ASSERT_EQ(comp.parts.size(), 5u);
    uint64_t part_cycles = 0;
    for (const auto &p : comp.parts)
        part_cycles += p.hist.cycles();
    EXPECT_EQ(comp.hist.cycles(), part_cycles);
    uint64_t part_instr = 0;
    for (const auto &p : comp.parts)
        part_instr += p.hw.counters.instructions;
    EXPECT_EQ(comp.hw.counters.instructions, part_instr);
}

TEST(Experiments, MixLandsInPaperBands)
{
    // Coarse acceptance bands around Table 1 for the composite.
    CompositeResult comp = runComposite(400000);
    Cpu780 ref;
    HistogramAnalyzer an(ref.controlStore(), comp.hist);
    double simple = an.groupFraction(Group::Simple);
    EXPECT_GT(simple, 0.75);
    EXPECT_LT(simple, 0.92);
    EXPECT_GT(an.groupFraction(Group::Field), 0.02);
    EXPECT_GT(an.groupFraction(Group::Float), 0.01);
    EXPECT_GT(an.groupFraction(Group::CallRet), 0.01);
    EXPECT_GT(an.groupFraction(Group::System), 0.005);
    EXPECT_GT(an.groupFraction(Group::Character), 0.0);
    EXPECT_GT(an.groupFraction(Group::Decimal), 0.0);
    // Group fractions sum to ~1: every decoded instruction reaches an
    // execute flow, except the handful cut off when the cycle budget
    // expires mid-instruction (one per experiment).
    double sum = 0.0;
    for (unsigned g = 0; g < static_cast<unsigned>(Group::NumGroups);
         ++g)
        sum += an.groupFraction(static_cast<Group>(g));
    EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Experiments, TimingShapeMatchesPaper)
{
    CompositeResult comp = runComposite(400000);
    Cpu780 ref;
    HistogramAnalyzer an(ref.controlStore(), comp.hist);
    // On the order of 10 cycles per instruction.
    EXPECT_GT(an.cyclesPerInstruction(), 7.0);
    EXPECT_LT(an.cyclesPerInstruction(), 14.0);
    // Decode + specifier processing is close to half of all time.
    double front = an.rowTotal(Row::Decode) +
        an.rowTotal(Row::Spec1) + an.rowTotal(Row::Spec26) +
        an.rowTotal(Row::Bdisp);
    EXPECT_GT(front / an.cyclesPerInstruction(), 0.33);
    EXPECT_LT(front / an.cyclesPerInstruction(), 0.60);
    // CALL/RET is the largest execute row despite low frequency.
    for (Row r : {Row::ExecField, Row::ExecFloat, Row::ExecSystem,
                  Row::ExecCharacter, Row::ExecDecimal}) {
        EXPECT_GT(an.rowTotal(Row::ExecCallRet), an.rowTotal(r));
    }
    // Reads outnumber writes roughly 2:1.
    double ratio =
        an.totalReadsPerInstr() / an.totalWritesPerInstr();
    EXPECT_GT(ratio, 1.4);
    EXPECT_LT(ratio, 3.0);
}

TEST(Experiments, DeterministicAcrossRuns)
{
    ExperimentResult a = runExperiment(commercialProfile(), 80000);
    ExperimentResult b = runExperiment(commercialProfile(), 80000);
    EXPECT_EQ(a.hw.counters.instructions, b.hw.counters.instructions);
    EXPECT_EQ(a.hist.cycles(), b.hist.cycles());
    for (size_t i = 0; i < a.hist.normal.size(); i += 37)
        ASSERT_EQ(a.hist.normal[i], b.hist.normal[i]) << i;
}

TEST(Experiments, InstructionConservation)
{
    ExperimentResult r = runExperiment(timesharingLightProfile(),
                                       150000);
    Cpu780 ref;
    HistogramAnalyzer an(ref.controlStore(), r.hist);
    // IID counts (histogram) vs retired count (hardware): the
    // histogram misses only the instructions executed while the
    // monitor was gated off for the Null process.
    EXPECT_LE(an.instructions(), r.hw.counters.instructions);
    EXPECT_GT(an.instructions(),
              r.hw.counters.instructions / 2);
}

class SeedFuzzTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SeedFuzzTest, RandomProgramsRunCleanly)
{
    // Different seeds produce entirely different programs; all must
    // boot, timeshare and measure without faulting.
    WorkloadProfile prof = allProfiles()[GetParam() % 5];
    prof.seed = 0xF00D + 7919u * static_cast<unsigned>(GetParam());
    prof.numUsers = 3;
    ExperimentResult r = runExperiment(prof, 100000);
    Cpu780 ref;
    HistogramAnalyzer an(ref.controlStore(), r.hist);
    EXPECT_GT(an.instructions(), 3000u);
    EXPECT_GT(an.cyclesPerInstruction(), 3.0);
    EXPECT_LT(an.cyclesPerInstruction(), 30.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedFuzzTest, ::testing::Range(0, 10));

TEST(Experiments, BenchCyclesEnvOverride)
{
    unsetenv("UPC780_CYCLES");
    EXPECT_EQ(benchCycles(123), 123u);
    setenv("UPC780_CYCLES", "4567", 1);
    EXPECT_EQ(benchCycles(123), 4567u);
    unsetenv("UPC780_CYCLES");
}

} // namespace vax::test
