/**
 * @file
 * UPC monitor and analyzer unit tests: the Unibus command interface,
 * histogram accumulation, and analyzer classification rules on
 * synthetic histograms.
 */

#include <gtest/gtest.h>

#include "cpu/cpu.hh"
#include "upc/analyzer.hh"
#include "upc/monitor.hh"

namespace vax::test
{

TEST(Monitor, CountsByBank)
{
    UpcMonitor m;
    m.count(10, false);
    m.count(10, false);
    m.count(10, true);
    EXPECT_EQ(m.normalCount(10), 2u);
    EXPECT_EQ(m.stalledCount(10), 1u);
    EXPECT_EQ(m.histogram().cycles(), 3u);
}

TEST(Monitor, UnibusCommands)
{
    UpcMonitor m;
    m.count(5, false);
    m.unibusWrite(UpcMonitor::cmdStop);
    EXPECT_FALSE(m.collecting());
    m.count(5, false);
    EXPECT_EQ(m.normalCount(5), 1u); // not counted while stopped
    m.unibusWrite(UpcMonitor::cmdStart);
    m.count(5, false);
    EXPECT_EQ(m.normalCount(5), 2u);
    m.unibusWrite(UpcMonitor::cmdClear);
    EXPECT_EQ(m.normalCount(5), 0u);
    EXPECT_EQ(m.histogram().cycles(), 0u);
}

TEST(Monitor, HistogramAccumulation)
{
    Histogram a, b;
    a.normal[3] = 7;
    a.stalled[3] = 2;
    b.normal[3] = 1;
    b.normal[9] = 5;
    a.add(b);
    EXPECT_EQ(a.normal[3], 8u);
    EXPECT_EQ(a.stalled[3], 2u);
    EXPECT_EQ(a.normal[9], 5u);
    EXPECT_EQ(a.cycles(), 15u);
}

class AnalyzerSyntheticTest : public ::testing::Test
{
  protected:
    AnalyzerSyntheticTest()
    {
        cs = &cpu.controlStore();
    }

    /** Find a control-store address by annotation name. */
    UAddr
    addrOf(const char *name) const
    {
        for (UAddr a = 0; a < cs->size(); ++a) {
            if (std::string(cs->annotation(a).name) == name)
                return a;
        }
        ADD_FAILURE() << "no microword named " << name;
        return 0;
    }

    Cpu780 cpu;
    const ControlStore *cs = nullptr;
    Histogram hist;
};

TEST_F(AnalyzerSyntheticTest, InstructionCountFromIid)
{
    hist.normal[cs->entries.iid] = 1000;
    HistogramAnalyzer an(*cs, hist);
    EXPECT_EQ(an.instructions(), 1000u);
    EXPECT_DOUBLE_EQ(an.cell(Row::Decode, TimeCol::Compute), 1.0);
}

TEST_F(AnalyzerSyntheticTest, IbStallClassification)
{
    hist.normal[cs->entries.iid] = 100;
    hist.stalled[cs->entries.iid] = 60;
    HistogramAnalyzer an(*cs, hist);
    EXPECT_DOUBLE_EQ(an.cell(Row::Decode, TimeCol::IbStall), 0.6);
    EXPECT_DOUBLE_EQ(an.colTotal(TimeCol::IbStall), 0.6);
}

TEST_F(AnalyzerSyntheticTest, ReadAndStallColumns)
{
    hist.normal[cs->entries.iid] = 100;
    UAddr rd = addrOf("SPEC1.(Rn).r");
    hist.normal[rd] = 50;
    hist.stalled[rd] = 30;
    HistogramAnalyzer an(*cs, hist);
    EXPECT_DOUBLE_EQ(an.cell(Row::Spec1, TimeCol::Read), 0.5);
    EXPECT_DOUBLE_EQ(an.cell(Row::Spec1, TimeCol::RStall), 0.3);
    EXPECT_DOUBLE_EQ(an.readsPerInstr(Row::Spec1), 0.5);
}

TEST_F(AnalyzerSyntheticTest, StallAtPlainWordPanics)
{
    hist.normal[cs->entries.iid] = 10;
    // A stall recorded at a compute-only, non-IB microword is a
    // simulator bug; the analyzer must catch it.
    UAddr plain = addrOf("NOP");
    hist.stalled[plain] = 1;
    EXPECT_DEATH({ HistogramAnalyzer an(*cs, hist); (void)an; },
                 "stalled cycles");
}

TEST_F(AnalyzerSyntheticTest, GroupFrequenciesFromFlowEntries)
{
    hist.normal[cs->entries.iid] = 100;
    hist.normal[cs->entries.exec[static_cast<size_t>(
        ExecFlow::Mov)]] = 60;
    hist.normal[cs->entries.exec[static_cast<size_t>(
        ExecFlow::MovC3)]] = 40;
    HistogramAnalyzer an(*cs, hist);
    EXPECT_DOUBLE_EQ(an.groupFraction(Group::Simple), 0.6);
    EXPECT_DOUBLE_EQ(an.groupFraction(Group::Character), 0.4);
}

TEST_F(AnalyzerSyntheticTest, TakenFractions)
{
    hist.normal[cs->entries.iid] = 100;
    hist.normal[cs->entries.exec[static_cast<size_t>(
        ExecFlow::BCond)]] = 40;
    hist.normal[addrOf("BCOND.taken")] = 25;
    HistogramAnalyzer an(*cs, hist);
    EXPECT_DOUBLE_EQ(an.pcChangeFraction(PcChangeKind::SimpleCond),
                     0.4);
    EXPECT_DOUBLE_EQ(an.takenFraction(PcChangeKind::SimpleCond),
                     0.625);
    // Unconditional kinds report 100% without a marker.
    hist.normal[cs->entries.exec[static_cast<size_t>(
        ExecFlow::Jmp)]] = 10;
    HistogramAnalyzer an2(*cs, hist);
    EXPECT_DOUBLE_EQ(an2.takenFraction(PcChangeKind::Uncond), 1.0);
}

TEST_F(AnalyzerSyntheticTest, SpecifierPositionAccounting)
{
    hist.normal[cs->entries.iid] = 100;
    // 30 register SPEC1 entries, 20 register SPEC2-6 entries,
    // 10 indexed first specifiers (index word + SPEC2-6 base entry).
    hist.normal[cs->entries.spec[static_cast<size_t>(
        AddrMode::Register)][0][0]] = 30;
    hist.normal[cs->entries.spec[static_cast<size_t>(
        AddrMode::Register)][1][0]] = 20;
    hist.normal[cs->entries.indexPrefix[0]] = 10;
    hist.normal[cs->entries.spec[static_cast<size_t>(
        AddrMode::ByteDisp)][1][0]] = 10; // their base processing
    HistogramAnalyzer an(*cs, hist);
    EXPECT_DOUBLE_EQ(an.spec1PerInstr(), 0.40);  // 30 + 10 indexed
    EXPECT_DOUBLE_EQ(an.spec26PerInstr(), 0.20); // 30 - 10 routed
    EXPECT_NEAR(an.indexedFraction(2), 10.0 / 60.0, 1e-9);
}

TEST_F(AnalyzerSyntheticTest, HeadwaysFromMarks)
{
    hist.normal[cs->entries.iid] = 6000;
    hist.normal[cs->entries.interrupt] = 10;
    hist.normal[addrOf("LDPCTX")] = 2;
    hist.normal[addrOf("MTPR.sirr")] = 3;
    HistogramAnalyzer an(*cs, hist);
    EXPECT_DOUBLE_EQ(an.headwayInterrupts(), 600.0);
    EXPECT_DOUBLE_EQ(an.headwayContextSwitches(), 3000.0);
    EXPECT_DOUBLE_EQ(an.headwaySwIntRequests(), 2000.0);
}

TEST_F(AnalyzerSyntheticTest, TbMissAccounting)
{
    hist.normal[cs->entries.iid] = 1000;
    hist.normal[cs->entries.tbMissD] = 20;
    hist.normal[cs->entries.tbMissI] = 10;
    // Service cycles spread over the MemMgmt row.
    hist.normal[addrOf("MM.pteread")] = 20;
    hist.stalled[addrOf("MM.pteread")] = 70;
    HistogramAnalyzer an(*cs, hist);
    EXPECT_DOUBLE_EQ(an.tbMissPerInstr(), 0.03);
    EXPECT_DOUBLE_EQ(an.tbMissPerInstrD(), 0.02);
    EXPECT_DOUBLE_EQ(an.tbMissPerInstrI(), 0.01);
    // 30 entry cycles + 90 pteread cycles over 30 misses = 4.
    EXPECT_DOUBLE_EQ(an.tbServiceCyclesPerMiss(), 4.0);
    EXPECT_NEAR(an.tbServiceStallPerMiss(), 70.0 / 30.0, 1e-9);
}

TEST_F(AnalyzerSyntheticTest, HottestSorted)
{
    UAddr rd = addrOf("SPEC1.(Rn).r");
    hist.normal[cs->entries.iid] = 100;
    hist.normal[rd] = 300;
    hist.stalled[rd] = 50;
    hist.normal[addrOf("NOP")] = 200;
    HistogramAnalyzer an(*cs, hist);
    auto hot = an.hottest(2);
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0].addr, rd);
    EXPECT_EQ(hot[0].cycles, 350u);
    EXPECT_EQ(hot[1].addr, addrOf("NOP"));
}

TEST(ControlStoreLayout, FitsHistogramBoard)
{
    Cpu780 cpu;
    EXPECT_LE(cpu.controlStore().size(), ControlStore::capacity);
    EXPECT_GT(cpu.controlStore().size(), 400u);
    // Every implemented opcode has a live execute entry.
    for (unsigned i = 0; i < 256; ++i) {
        const OpcodeInfo &info = opcodeInfo(static_cast<uint8_t>(i));
        if (!info.valid)
            continue;
        EXPECT_NE(cpu.controlStore().entries.exec[static_cast<size_t>(
                      info.flow)],
                  kInvalidUAddr)
            << info.mnemonic;
    }
}

TEST(ControlStoreLayout, AnnotationsComplete)
{
    Cpu780 cpu;
    const ControlStore &cs = cpu.controlStore();
    for (UAddr a = 0; a < cs.size(); ++a) {
        const UAnnotation &ann = cs.annotation(a);
        EXPECT_LT(static_cast<unsigned>(ann.row),
                  static_cast<unsigned>(Row::NumRows));
        EXPECT_NE(ann.name, nullptr);
        EXPECT_NE(std::string(ann.name), "");
        // Stalled cycles must be classifiable: a stall can only occur
        // at a word that references memory or requests IB bytes.
        // (Displacement-mode read words do both; their stalled bank
        // is attributed to the memory column, a two-bank limitation
        // the real monitor shared.)
        if (ann.row == Row::Abort) {
            EXPECT_EQ(ann.mem, UMemKind::None) << ann.name;
        }
    }
}

} // namespace vax::test
