/**
 * @file
 * Shared helpers for simulator unit tests: assemble a fragment, load
 * it into physical memory with mapping disabled, run to HALT.
 */

#ifndef UPC780_TESTS_SIM_TEST_UTIL_HH
#define UPC780_TESTS_SIM_TEST_UTIL_HH

#include <memory>

#include "arch/assembler.hh"
#include "cpu/cpu.hh"
#include "upc/monitor.hh"

namespace vax::test
{

/** A CPU with a program loaded at a flat (unmapped) address. */
struct BareMachine
{
    explicit BareMachine(uint32_t base = 0x1000)
        : asmblr(base)
    {
        cpu = std::make_unique<Cpu780>();
        cpu->mem().setMapEnable(false);
        cpu->setCycleSink(&monitor);
    }

    /** Finish assembly, load, set SP, and run until HALT. */
    bool
    run(uint64_t max_cycles = 2'000'000, uint32_t sp = 0x20000)
    {
        auto image = asmblr.finish();
        cpu->mem().phys().load(asmblr.base(), image);
        cpu->reset(asmblr.base());
        cpu->ebox().setGpr(SP, sp);
        return cpu->run(max_cycles);
    }

    uint32_t gpr(unsigned r) const { return cpu->ebox().gpr(r); }

    uint32_t
    readLong(uint32_t pa) const
    {
        return cpu->mem().phys().read(pa, 4);
    }

    Assembler asmblr;
    UpcMonitor monitor;
    std::unique_ptr<Cpu780> cpu;
};

} // namespace vax::test

#endif // UPC780_TESTS_SIM_TEST_UTIL_HH
