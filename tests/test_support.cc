/**
 * @file
 * Unit tests of the support library: bit utilities, the deterministic
 * RNG, and the table formatter.
 */

#include <gtest/gtest.h>

#include "support/bitutil.hh"
#include "support/random.hh"
#include "support/table.hh"

namespace vax::test
{

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xDEADBEEF, 7, 0), 0xEFu);
    EXPECT_EQ(bits(0xDEADBEEF, 15, 8), 0xBEu);
    EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
    EXPECT_EQ(bits(0xFFFFFFFF, 31, 0), 0xFFFFFFFFu);
}

TEST(BitUtil, SignExtend)
{
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0x7F, 8), 127);
    EXPECT_EQ(sext(0xFF, 8), -1);
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0x1234, 16), 0x1234);
    EXPECT_EQ(sext(0xFFFFFFFF, 32), -1);
}

TEST(BitUtil, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignUp(0x1240, 16), 0x1240u);
    EXPECT_TRUE(isAligned(0x100, 4));
    EXPECT_FALSE(isAligned(0x101, 4));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(512), 9u);
    EXPECT_EQ(floorLog2(513), 9u);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(65));
    EXPECT_FALSE(isPowerOf2(0));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int32_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng r(17);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.geometric(10.0);
    EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, GeometricMinimumIsOne)
{
    Rng r(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.geometric(1.5), 1u);
}

TEST(Rng, PickWeightedRespectsZeros)
{
    Rng r(23);
    for (int i = 0; i < 500; ++i) {
        size_t pick = r.pickWeighted({0.0, 1.0, 0.0});
        EXPECT_EQ(pick, 1u);
    }
}

TEST(Rng, PickWeightedProportions)
{
    Rng r(29);
    int counts[3] = {};
    for (int i = 0; i < 30000; ++i)
        ++counts[r.pickWeighted({1.0, 2.0, 1.0})];
    EXPECT_NEAR(counts[1] / 30000.0, 0.5, 0.02);
    EXPECT_NEAR(counts[0] / 30000.0, 0.25, 0.02);
}

TEST(TextTable, FormatsAligned)
{
    TextTable t("caption");
    t.addRow({"Name", "Value"});
    t.addRow({"alpha", "1.00"});
    t.addRow({"b", "22.50"});
    std::string s = t.str();
    EXPECT_NE(s.find("caption"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22.50"), std::string::npos);
}

TEST(TextTable, NumberHelpers)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::pct(12.345, 1), "12.3%");
    EXPECT_EQ(TextTable::count(1234567), "1,234,567");
    EXPECT_EQ(TextTable::count(999), "999");
}

} // namespace vax::test
