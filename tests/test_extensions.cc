/**
 * @file
 * Tests of the extension features: histogram CSV persistence,
 * configurable IB size, memory-geometry what-ifs, and the
 * monotonicity properties the ablation benches rely on.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "upc/analyzer.hh"
#include "upc/hist_io.hh"
#include "workload/experiments.hh"

namespace vax::test
{

TEST(HistIo, RoundTripPreservesCounts)
{
    ExperimentResult r = runExperiment(timesharingLightProfile(),
                                       60000);
    Cpu780 ref;
    std::string path = ::testing::TempDir() + "upc_hist_rt.csv";
    ASSERT_TRUE(saveHistogramCsv(path, r.hist, ref.controlStore()));
    Histogram back;
    ASSERT_TRUE(loadHistogramCsv(path, &back));
    EXPECT_EQ(back.cycles(), r.hist.cycles());
    for (size_t i = 0; i < back.normal.size(); ++i) {
        ASSERT_EQ(back.normal[i], r.hist.normal[i]) << i;
        ASSERT_EQ(back.stalled[i], r.hist.stalled[i]) << i;
    }
    // Analyses of original and reloaded agree exactly.
    HistogramAnalyzer a1(ref.controlStore(), r.hist);
    HistogramAnalyzer a2(ref.controlStore(), back);
    EXPECT_DOUBLE_EQ(a1.cyclesPerInstruction(),
                     a2.cyclesPerInstruction());
    EXPECT_EQ(a1.instructions(), a2.instructions());
    std::remove(path.c_str());
}

TEST(HistIo, MissingFileFails)
{
    Histogram h;
    EXPECT_FALSE(loadHistogramCsv("/nonexistent/path.csv", &h));
}

TEST(HistIo, MalformedLineFails)
{
    std::string path = ::testing::TempDir() + "upc_hist_bad.csv";
    FILE *f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fprintf(f, "upc,name,row,mem,ib,normal,stalled\n");
    fprintf(f, "not a valid line\n");
    fclose(f);
    Histogram h;
    EXPECT_FALSE(loadHistogramCsv(path, &h));
    std::remove(path.c_str());
}

TEST(Extensions, IbSizeIsConfigurable)
{
    SimConfig small, big;
    small.ibBytes = 4;
    big.ibBytes = 16;
    Cpu780 a(small), b(big);
    EXPECT_EQ(a.ib().capacity(), 4u);
    EXPECT_EQ(b.ib().capacity(), 16u);
}

TEST(Extensions, SmallerIbStallsMore)
{
    WorkloadProfile prof = timesharingLightProfile();
    prof.numUsers = 4;
    SimConfig small, big;
    small.ibBytes = 4;
    big.ibBytes = 16;
    small.seed = big.seed = prof.seed;
    ExperimentResult rs = runExperiment(prof, 120000, small);
    ExperimentResult rb = runExperiment(prof, 120000, big);
    Cpu780 refs(small), refb(big);
    HistogramAnalyzer as(refs.controlStore(), rs.hist);
    HistogramAnalyzer ab(refb.controlStore(), rb.hist);
    EXPECT_GT(as.colTotal(TimeCol::IbStall),
              ab.colTotal(TimeCol::IbStall));
}

TEST(Extensions, LongerWriteDrainStallsMore)
{
    WorkloadProfile prof = educationalProfile();
    prof.numUsers = 4;
    SimConfig fast, slow;
    fast.mem.writeDrainCycles = 2;
    slow.mem.writeDrainCycles = 12;
    fast.seed = slow.seed = prof.seed;
    ExperimentResult rf = runExperiment(prof, 120000, fast);
    ExperimentResult rl = runExperiment(prof, 120000, slow);
    Cpu780 reff(fast), refl(slow);
    HistogramAnalyzer af(reff.controlStore(), rf.hist);
    HistogramAnalyzer al(refl.controlStore(), rl.hist);
    EXPECT_GT(al.colTotal(TimeCol::WStall),
              af.colTotal(TimeCol::WStall));
    EXPECT_GT(al.cyclesPerInstruction(), af.cyclesPerInstruction());
}

TEST(Extensions, BiggerCacheStallsLess)
{
    WorkloadProfile prof = timesharingHeavyProfile();
    prof.numUsers = 4;
    SimConfig small, big;
    small.mem.cacheBytes = 2 << 10;
    big.mem.cacheBytes = 64 << 10;
    small.seed = big.seed = prof.seed;
    ExperimentResult rs = runExperiment(prof, 120000, small);
    ExperimentResult rb = runExperiment(prof, 120000, big);
    Cpu780 refs(small), refb(big);
    HistogramAnalyzer as(refs.controlStore(), rs.hist);
    HistogramAnalyzer ab(refb.controlStore(), rb.hist);
    EXPECT_GT(as.colTotal(TimeCol::RStall),
              ab.colTotal(TimeCol::RStall));
    EXPECT_GT(as.cyclesPerInstruction(), ab.cyclesPerInstruction());
    // More cache always means a better or equal hit rate.
    EXPECT_LE(rb.hw.cache.readMissesD + rb.hw.cache.readMissesI,
              rs.hw.cache.readMissesD + rs.hw.cache.readMissesI);
}

TEST(Extensions, BiggerTbMissesLess)
{
    WorkloadProfile prof = commercialProfile();
    prof.numUsers = 4;
    SimConfig small, big;
    small.mem.tbProcessEntries = small.mem.tbSystemEntries = 16;
    big.mem.tbProcessEntries = big.mem.tbSystemEntries = 256;
    small.seed = big.seed = prof.seed;
    ExperimentResult rs = runExperiment(prof, 120000, small);
    ExperimentResult rb = runExperiment(prof, 120000, big);
    Cpu780 refs(small), refb(big);
    HistogramAnalyzer as(refs.controlStore(), rs.hist);
    HistogramAnalyzer ab(refb.controlStore(), rb.hist);
    EXPECT_GT(as.tbMissPerInstr(), ab.tbMissPerInstr());
}

} // namespace vax::test
