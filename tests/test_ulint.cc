/**
 * @file
 * The static microcode verifier, exercised three ways: the production
 * ROM must lint clean, a minimal hand-built store must lint clean,
 * and a family of deliberately broken mini-ROMs must each fire
 * exactly the diagnostic class their defect belongs to.
 */

#include <gtest/gtest.h>

#include "analysis/ulint.hh"
#include "arch/opcodes.hh"
#include "cpu/cpu.hh"
#include "support/stats.hh"
#include "ucode/rom.hh"

using namespace vax;

namespace
{

/**
 * A minimal control store the linter accepts: every required entry
 * slot filled with a word of the right Table 8 row, the four microtrap
 * service entries returning via trap-return, and every execute flow
 * some opcode uses pointing at a per-group terminal word.  Tests
 * perturb it (or rebuild it with a knob) to plant exactly one defect.
 */
struct MiniRom
{
    struct Opts
    {
        /** Emit the unaligned-read service entry without a
         *  trap-return (mem-annotation defect). */
        bool alignReadNoRet = false;
    };

    ControlStore cs;
    MicroAssembler as{cs};

    UAddr
    word(Row row, const char *name, UFlow f,
         UMemKind mem = UMemKind::None, bool ib = false)
    {
        UAnnotation a;
        a.row = row;
        a.name = name;
        a.mem = mem;
        a.ibRequest = ib;
        return as.emit(a, std::move(f), [](Ebox &) {});
    }

    MiniRom() { build(Opts{}); }
    explicit MiniRom(const Opts &opts) { build(opts); }

    void
    build(const Opts &opts)
    {
        EntryPoints &ep = cs.entries;
        ep.iid = word(Row::Decode, "IID", flowDispatch(),
                      UMemKind::None, true);
        ep.specWait[0] =
            word(Row::Spec1, "SPEC1.wait", flowDispatch(),
                 UMemKind::None, true);
        ep.specWait[1] =
            word(Row::Spec26, "SPEC26.wait", flowDispatch(),
                 UMemKind::None, true);
        ep.abort = word(Row::Abort, "ABORT", flowReserved());
        ep.tbMissD =
            word(Row::MemMgmt, "TB.d", flowTrapRet(), UMemKind::Read);
        ep.tbMissI =
            word(Row::MemMgmt, "TB.i", flowTrapRet(), UMemKind::Read);
        ep.alignRead = opts.alignReadNoRet
            ? word(Row::MemMgmt, "ALIGN.r", flowEnd(), UMemKind::Read)
            : word(Row::MemMgmt, "ALIGN.r", flowTrapRet(),
                   UMemKind::Read);
        ep.alignWrite = word(Row::MemMgmt, "ALIGN.w", flowTrapRet(),
                             UMemKind::Write);
        ep.interrupt = word(Row::IntExcept, "INT", flowEnd());
        ep.exception = word(Row::IntExcept, "EXC", flowEnd());
        ep.machineCheck = word(Row::IntExcept, "MCHK", flowEnd());
        ep.indexPrefix[0] =
            word(Row::Spec1, "SPEC1.idx", flowSpec26());
        ep.indexPrefix[1] =
            word(Row::Spec26, "SPEC26.idx", flowSpec26());

        // One shared specifier word per position class.
        UAddr s1 = word(Row::Spec1, "SPEC1.any", flowDispatch());
        UAddr s26 = word(Row::Spec26, "SPEC26.any", flowDispatch());
        for (size_t m = 0;
             m < static_cast<size_t>(AddrMode::NumModes); ++m) {
            for (size_t c = 0;
                 c < static_cast<size_t>(SpecAccClass::NumClasses);
                 ++c) {
                AddrMode mode = static_cast<AddrMode>(m);
                bool read_only = mode == AddrMode::ShortLiteral ||
                    mode == AddrMode::Immediate;
                if (read_only &&
                    static_cast<SpecAccClass>(c) != SpecAccClass::Read)
                    continue;
                ep.spec[m][0][c] = s1;
                ep.spec[m][1][c] = s26;
            }
        }

        // One terminal execute word per group row, shared by every
        // flow the opcode table assigns to that group.
        std::array<UAddr, static_cast<size_t>(Group::NumGroups)> ew;
        ew.fill(kInvalidUAddr);
        for (unsigned i = 0; i < 256; ++i) {
            const OpcodeInfo &info =
                opcodeInfo(static_cast<uint8_t>(i));
            if (!info.valid || info.flow == ExecFlow::None)
                continue;
            size_t g = static_cast<size_t>(info.group);
            if (ew[g] == kInvalidUAddr)
                ew[g] = word(execRowFor(info.group), "EXEC.any",
                             flowEnd());
            ep.exec[static_cast<size_t>(info.flow)] = ew[g];
        }
    }

    /** Row expected at exec entries of the group owning `flow`. */
    static Row
    rowOf(ExecFlow flow)
    {
        for (unsigned i = 0; i < 256; ++i) {
            const OpcodeInfo &info =
                opcodeInfo(static_cast<uint8_t>(i));
            if (info.valid && info.flow == flow)
                return execRowFor(info.group);
        }
        return Row::ExecSimple;
    }
};

bool
hasMessage(const LintReport &rep, LintCheck check,
           const std::string &needle)
{
    for (const LintDiag &d : rep.diags)
        if (d.check == check &&
            d.message.find(needle) != std::string::npos)
            return true;
    return false;
}

} // anonymous namespace

TEST(UcodeLint, ProductionRomIsClean)
{
    ControlStore cs;
    buildMicrocodeRom(cs);
    LintReport rep = lintControlStore(cs);
    EXPECT_TRUE(rep.clean()) << rep.text();
    EXPECT_EQ(rep.words, cs.size());
    EXPECT_GT(rep.reachable, 0u);
    EXPECT_GE(rep.reserved, 3u); // RESERVED0, ABORT, EXC.stub
    // Everything but the reserved guard words is reachable.
    EXPECT_GE(rep.reachable + rep.reserved, rep.words);
}

TEST(UcodeLint, MiniRomIsClean)
{
    MiniRom mini;
    LintReport rep = lintControlStore(mini.cs);
    EXPECT_TRUE(rep.clean()) << rep.text();
    EXPECT_EQ(rep.reachable + 1, rep.words); // only ABORT unreached
}

TEST(UcodeLint, DanglingLabelIsABadTarget)
{
    MiniRom mini;
    ULabel never_bound = mini.as.newLabel();
    UAddr bad = mini.word(MiniRom::rowOf(ExecFlow::Mov), "MOV.bad",
                          flowTo(never_bound));
    mini.cs.entries.exec[static_cast<size_t>(ExecFlow::Mov)] = bad;
    LintReport rep = lintControlStore(mini.cs);
    ASSERT_EQ(rep.diags.size(), 1u) << rep.text();
    EXPECT_EQ(rep.countFor(LintCheck::BadTarget), 1u);
    EXPECT_EQ(rep.diags[0].addr, bad);
    EXPECT_TRUE(
        hasMessage(rep, LintCheck::BadTarget, "never bound"));
}

TEST(UcodeLint, OutOfRangeJumpIsABadTarget)
{
    MiniRom mini;
    UAddr bad = mini.word(MiniRom::rowOf(ExecFlow::Mov), "MOV.bad",
                          flowToAddr(9999));
    mini.cs.entries.exec[static_cast<size_t>(ExecFlow::Mov)] = bad;
    LintReport rep = lintControlStore(mini.cs);
    ASSERT_EQ(rep.diags.size(), 1u) << rep.text();
    EXPECT_TRUE(hasMessage(rep, LintCheck::BadTarget,
                           "outside the"));
}

TEST(UcodeLint, ConflictingRowClaimIsAClassificationError)
{
    MiniRom mini;
    // A Simple-group execute entry classified as Float microcode.
    UAddr bad =
        mini.word(Row::ExecFloat, "MOV.wrongrow", flowEnd());
    mini.cs.entries.exec[static_cast<size_t>(ExecFlow::Mov)] = bad;
    LintReport rep = lintControlStore(mini.cs);
    ASSERT_EQ(rep.diags.size(), 1u) << rep.text();
    EXPECT_EQ(rep.countFor(LintCheck::Classification), 1u);
    EXPECT_TRUE(hasMessage(rep, LintCheck::Classification,
                           "expected Simple"));
}

TEST(UcodeLint, BogusRowValueIsAClassificationError)
{
    MiniRom mini;
    // Reachable via fall-through from a well-classified entry, so
    // only the row-value check fires, not the slot expectation.
    UAddr entry = mini.word(MiniRom::rowOf(ExecFlow::Mov),
                            "MOV.entry", flowFall());
    mini.word(static_cast<Row>(200), "MOV.bogus", flowEnd());
    mini.cs.entries.exec[static_cast<size_t>(ExecFlow::Mov)] = entry;
    LintReport rep = lintControlStore(mini.cs);
    ASSERT_EQ(rep.diags.size(), 1u) << rep.text();
    EXPECT_TRUE(hasMessage(rep, LintCheck::Classification,
                           "not a Table 8 row"));
}

TEST(UcodeLint, ServiceEntryWithoutTrapReturn)
{
    MiniRom::Opts opts;
    opts.alignReadNoRet = true;
    MiniRom mini(opts);
    LintReport rep = lintControlStore(mini.cs);
    ASSERT_EQ(rep.diags.size(), 1u) << rep.text();
    EXPECT_EQ(rep.countFor(LintCheck::MemAnnotation), 1u);
    EXPECT_TRUE(hasMessage(rep, LintCheck::MemAnnotation,
                           "never reaches a trap-return"));
}

TEST(UcodeLint, ReservedWordClaimingMemory)
{
    MiniRom mini;
    mini.word(Row::Abort, "RSVD.mem", flowReserved(),
              UMemKind::Read);
    LintReport rep = lintControlStore(mini.cs);
    ASSERT_EQ(rep.diags.size(), 1u) << rep.text();
    EXPECT_TRUE(hasMessage(rep, LintCheck::MemAnnotation,
                           "reserved"));
}

TEST(UcodeLint, ExitlessMicroLoop)
{
    MiniRom mini;
    Row row = MiniRom::rowOf(ExecFlow::Mov);
    ULabel a = mini.as.newLabel(), b = mini.as.newLabel();
    mini.as.bind(a);
    UAddr loop_head = mini.word(row, "LOOP.a", flowTo(b));
    mini.as.bind(b);
    mini.word(row, "LOOP.b", flowTo(a));
    mini.cs.entries.exec[static_cast<size_t>(ExecFlow::Mov)] =
        loop_head;
    LintReport rep = lintControlStore(mini.cs);
    ASSERT_EQ(rep.diags.size(), 1u) << rep.text();
    EXPECT_EQ(rep.countFor(LintCheck::MicroLoop), 1u);
    EXPECT_TRUE(hasMessage(rep, LintCheck::MicroLoop,
                           "2-word micro-loop"));
}

TEST(UcodeLint, LoopWithMemoryInteractionIsNotFlagged)
{
    MiniRom mini;
    Row row = MiniRom::rowOf(ExecFlow::Mov);
    ULabel a = mini.as.newLabel(), b = mini.as.newLabel();
    mini.as.bind(a);
    UAddr loop_head = mini.word(row, "LOOP.a", flowTo(b));
    mini.as.bind(b);
    // The read may microtrap: that is both an implicit exit edge and
    // a progress guarantee, so this loop is legal.
    mini.word(row, "LOOP.b", flowTo(a), UMemKind::Read);
    mini.cs.entries.exec[static_cast<size_t>(ExecFlow::Mov)] =
        loop_head;
    LintReport rep = lintControlStore(mini.cs);
    EXPECT_EQ(rep.countFor(LintCheck::MicroLoop), 0u) << rep.text();
}

TEST(UcodeLint, UnsetEntrySlot)
{
    MiniRom mini;
    mini.cs.entries.spec[static_cast<size_t>(AddrMode::Register)][0]
        [static_cast<size_t>(SpecAccClass::Read)] = kInvalidUAddr;
    LintReport rep = lintControlStore(mini.cs);
    ASSERT_EQ(rep.diags.size(), 1u) << rep.text();
    EXPECT_EQ(rep.countFor(LintCheck::EntryPoint), 1u);
    EXPECT_TRUE(hasMessage(rep, LintCheck::EntryPoint, "is unset"));
}

TEST(UcodeLint, LiteralWriteSlotIsNotRequired)
{
    // The legality matrix: short-literal/immediate specifiers only
    // exist with read access, so their other slots may stay unset.
    MiniRom mini;
    mini.cs.entries
        .spec[static_cast<size_t>(AddrMode::ShortLiteral)][0]
             [static_cast<size_t>(SpecAccClass::Write)] =
        kInvalidUAddr;
    LintReport rep = lintControlStore(mini.cs);
    EXPECT_TRUE(rep.clean()) << rep.text();
}

TEST(UcodeLint, UnreachableWordAndOrphanLabel)
{
    MiniRom mini;
    mini.word(Row::ExecSimple, "DEAD", flowEnd());
    (void)mini.as.newLabel(); // never bound, never referenced
    LintReport rep = lintControlStore(mini.cs);
    ASSERT_EQ(rep.diags.size(), 2u) << rep.text();
    EXPECT_EQ(rep.countFor(LintCheck::Unreachable), 2u);
    EXPECT_TRUE(hasMessage(rep, LintCheck::Unreachable,
                           "unreachable from every dispatch root"));
    EXPECT_TRUE(hasMessage(rep, LintCheck::Unreachable, "orphan"));
}

TEST(UcodeLint, TextAndJsonRendering)
{
    MiniRom mini;
    mini.cs.entries.iid = kInvalidUAddr;
    LintReport rep = lintControlStore(mini.cs);
    ASSERT_FALSE(rep.clean());
    std::string text = rep.text();
    EXPECT_NE(text.find("ucode:-: error: [entry-point]"),
              std::string::npos)
        << text;
    std::string json = rep.json();
    EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
    EXPECT_NE(json.find("\"entry-point\""), std::string::npos);

    ControlStore cs;
    buildMicrocodeRom(cs);
    LintReport clean = lintControlStore(cs);
    EXPECT_EQ(clean.text(), "");
    EXPECT_NE(clean.json().find("\"clean\": true"),
              std::string::npos);
}

TEST(UcodeLint, StatsSectionOnlyWhenDirty)
{
    ControlStore cs;
    buildMicrocodeRom(cs);
    stats::Registry clean_reg;
    regLintStats(lintControlStore(cs), clean_reg);
    EXPECT_TRUE(clean_reg.empty());

    MiniRom mini;
    mini.cs.entries.iid = kInvalidUAddr;
    LintReport rep = lintControlStore(mini.cs);
    stats::Registry reg;
    regLintStats(rep, reg);
    ASSERT_NE(reg.find("lint.diags"), nullptr);
    EXPECT_GE(reg.find("lint.diags")->asScalar(), 1u);
    ASSERT_NE(reg.find("lint.entry-point"), nullptr);
    EXPECT_GE(reg.find("lint.entry-point")->asScalar(), 1u);
}

TEST(UcodeLint, StrictCpuConstructionAcceptsProductionRom)
{
    SimConfig cfg;
    cfg.strict = true;
    Cpu780 cpu(cfg); // panics if the verifier objects
    EXPECT_TRUE(cpu.controlStore().flowsResolved());
}
