/**
 * @file
 * Memory-subsystem tests: physical memory, the write-through cache,
 * the split translation buffer, the write buffer, and the MemSystem
 * cycle protocol (hit/miss/stall/unaligned/TB-miss behaviour).
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"
#include "mem/page_table.hh"

namespace vax::test
{

// ---------------- physical memory ----------------

TEST(PhysMem, ReadWriteLittleEndian)
{
    PhysicalMemory m(4096);
    m.write(0x100, 0xDEADBEEF, 4);
    EXPECT_EQ(m.readByte(0x100), 0xEFu);
    EXPECT_EQ(m.readByte(0x103), 0xDEu);
    EXPECT_EQ(m.read(0x100, 2), 0xBEEFu);
    EXPECT_EQ(m.read(0x102, 2), 0xDEADu);
}

TEST(PhysMem, LoadImage)
{
    PhysicalMemory m(4096);
    m.load(0x200, {1, 2, 3, 4});
    EXPECT_EQ(m.read(0x200, 4), 0x04030201u);
}

// ---------------- cache ----------------

TEST(Cache, MissThenFillThenHit)
{
    MemConfig cfg;
    Cache c(cfg);
    EXPECT_FALSE(c.readRef(0x1000, false));
    c.fill(0x1000);
    EXPECT_TRUE(c.readRef(0x1000, false));
    // Same 8-byte block hits; the next block does not.
    EXPECT_TRUE(c.readRef(0x1004, false));
    EXPECT_FALSE(c.readRef(0x1008, false));
    EXPECT_EQ(c.stats().readRefsD, 4u);
    EXPECT_EQ(c.stats().readMissesD, 2u);
}

TEST(Cache, StreamsCountedSeparately)
{
    MemConfig cfg;
    Cache c(cfg);
    c.readRef(0x0, true);
    c.readRef(0x100, false);
    EXPECT_EQ(c.stats().readRefsI, 1u);
    EXPECT_EQ(c.stats().readRefsD, 1u);
}

TEST(Cache, WriteThroughNoAllocate)
{
    MemConfig cfg;
    Cache c(cfg);
    c.writeRef(0x2000);
    EXPECT_EQ(c.stats().writeRefs, 1u);
    EXPECT_EQ(c.stats().writeHits, 0u);
    // The write did not allocate.
    EXPECT_FALSE(c.readRef(0x2000, false));
    c.fill(0x2000);
    c.writeRef(0x2000);
    EXPECT_EQ(c.stats().writeHits, 1u);
}

TEST(Cache, TwoWayKeepsConflictingBlocks)
{
    MemConfig cfg;
    Cache c(cfg);
    // Two addresses one "cache size / ways" apart share a set.
    uint32_t stride = cfg.cacheBytes / cfg.cacheWays;
    c.fill(0x0);
    c.fill(stride);
    EXPECT_TRUE(c.readRef(0x0, false));
    EXPECT_TRUE(c.readRef(stride, false));
    // A third conflicting block evicts one of them.
    c.fill(2 * stride);
    int hits = c.readRef(0x0, false) + c.readRef(stride, false) +
        c.readRef(2 * stride, false);
    EXPECT_EQ(hits, 2);
}

TEST(Cache, InvalidateAll)
{
    MemConfig cfg;
    Cache c(cfg);
    c.fill(0x40);
    c.invalidateAll();
    EXPECT_FALSE(c.readRef(0x40, false));
}

TEST(Cache, GeometryDerived)
{
    MemConfig cfg;
    Cache c(cfg);
    EXPECT_EQ(c.numSets() * c.numWays() * cfg.cacheBlockBytes,
              cfg.cacheBytes);
}

// ---------------- translation buffer ----------------

class TbTest : public ::testing::Test
{
  protected:
    MemConfig cfg;
    TranslationBuffer tb{cfg};
};

TEST_F(TbTest, MissThenInsertThenHit)
{
    PhysAddr pa;
    EXPECT_EQ(tb.lookup(0x1200, false, CpuMode::Kernel, false, &pa),
              TbResult::Miss);
    tb.insert(0x1200, pte::make(7, true, true));
    EXPECT_EQ(tb.lookup(0x1200, false, CpuMode::Kernel, false, &pa),
              TbResult::Hit);
    EXPECT_EQ(pa, 7u * pageBytes + 0x200u % pageBytes);
}

TEST_F(TbTest, ProtectionCheckedForUser)
{
    PhysAddr pa;
    tb.insert(0x1000, pte::make(1, true, false));
    EXPECT_EQ(tb.lookup(0x1000, false, CpuMode::User, false, &pa),
              TbResult::Hit);
    EXPECT_EQ(tb.lookup(0x1000, true, CpuMode::User, false, &pa),
              TbResult::AccessViolation);
    // Kernel may write regardless.
    EXPECT_EQ(tb.lookup(0x1000, true, CpuMode::Kernel, false, &pa),
              TbResult::Hit);
}

TEST_F(TbTest, SystemAndProcessHalvesIndependent)
{
    PhysAddr pa;
    tb.insert(0x00000000, pte::make(1, true, true)); // P0
    tb.insert(systemBase, pte::make(2, false, false)); // S0
    EXPECT_EQ(tb.lookup(0, false, CpuMode::Kernel, false, &pa),
              TbResult::Hit);
    EXPECT_EQ(tb.lookup(systemBase, false, CpuMode::Kernel, false,
                        &pa),
              TbResult::Hit);
    tb.invalidateProcess();
    EXPECT_EQ(tb.lookup(0, false, CpuMode::Kernel, false, &pa),
              TbResult::Miss);
    EXPECT_EQ(tb.lookup(systemBase, false, CpuMode::Kernel, false,
                        &pa),
              TbResult::Hit);
    EXPECT_EQ(tb.stats().processFlushes, 1u);
}

TEST_F(TbTest, DirectMappedConflict)
{
    PhysAddr pa;
    // Two P0 pages whose VPNs differ by the number of process
    // entries collide.
    uint32_t stride = cfg.tbProcessEntries * pageBytes;
    tb.insert(0, pte::make(1, true, true));
    tb.insert(stride, pte::make(2, true, true));
    EXPECT_EQ(tb.lookup(0, false, CpuMode::Kernel, false, &pa),
              TbResult::Miss);
    EXPECT_EQ(tb.lookup(stride, false, CpuMode::Kernel, false, &pa),
              TbResult::Hit);
}

TEST_F(TbTest, InvalidateSingle)
{
    PhysAddr pa;
    tb.insert(0x4000, pte::make(3, true, true));
    tb.invalidateSingle(0x4000);
    EXPECT_EQ(tb.lookup(0x4000, false, CpuMode::Kernel, false, &pa),
              TbResult::Miss);
}

TEST_F(TbTest, StatsCountByStream)
{
    PhysAddr pa;
    tb.lookup(0, false, CpuMode::Kernel, true, &pa);
    tb.lookup(0, false, CpuMode::Kernel, false, &pa);
    EXPECT_EQ(tb.stats().missesI, 1u);
    EXPECT_EQ(tb.stats().missesD, 1u);
    // Uncounted probes change nothing.
    tb.lookup(0, false, CpuMode::Kernel, false, &pa, false);
    EXPECT_EQ(tb.stats().lookupsD, 1u);
}

// ---------------- write buffer / SBI ----------------

TEST(WriteBuffer, DrainWindow)
{
    WriteBuffer wb;
    EXPECT_FALSE(wb.busy());
    wb.accept(6);
    EXPECT_TRUE(wb.busy());
    for (int i = 0; i < 6; ++i) {
        EXPECT_TRUE(wb.busy());
        wb.tick();
    }
    EXPECT_FALSE(wb.busy());
}

TEST(Sbi, TransactionCompletion)
{
    Sbi sbi;
    sbi.start(3);
    EXPECT_TRUE(sbi.busy());
    EXPECT_FALSE(sbi.tick());
    EXPECT_FALSE(sbi.tick());
    EXPECT_TRUE(sbi.tick()); // completes on the third tick
    EXPECT_FALSE(sbi.busy());
    EXPECT_EQ(sbi.transactions(), 1u);
}

// ---------------- MemSystem protocol ----------------

class MemSystemTest : public ::testing::Test
{
  protected:
    MemSystemTest() : mem(cfg)
    {
        mem.setMapEnable(false);
    }

    MemConfig cfg;
    MemSystem mem;
};

TEST_F(MemSystemTest, ReadHitAfterFill)
{
    mem.phys().write(0x100, 0xABCD1234, 4);
    // First read misses and starts a fill.
    MemResult r = mem.dataRead(0x100, 4, CpuMode::Kernel);
    EXPECT_EQ(r.status, MemStatus::Stall);
    unsigned stall_cycles = 0;
    while (!mem.eboxReadDone()) {
        mem.tick();
        ++stall_cycles;
        ASSERT_LT(stall_cycles, 20u);
    }
    EXPECT_EQ(stall_cycles, cfg.readMissPenalty + 1);
    EXPECT_EQ(mem.takeEboxReadData(), 0xABCD1234u);
    mem.tick();
    // Second read hits in the same cycle.
    r = mem.dataRead(0x100, 4, CpuMode::Kernel);
    EXPECT_EQ(r.status, MemStatus::Ok);
    EXPECT_EQ(r.data, 0xABCD1234u);
}

TEST_F(MemSystemTest, WriteBufferStall)
{
    MemResult r = mem.dataWrite(0x200, 1, 4, CpuMode::Kernel);
    EXPECT_EQ(r.status, MemStatus::Ok);
    EXPECT_EQ(mem.phys().read(0x200, 4), 1u); // write-through now
    // A second write within the drain window stalls.
    r = mem.dataWrite(0x204, 2, 4, CpuMode::Kernel);
    EXPECT_EQ(r.status, MemStatus::Stall);
    unsigned waited = 0;
    while (!mem.eboxWriteDone()) {
        mem.tick();
        ++waited;
        ASSERT_LT(waited, 20u);
    }
    mem.ackEboxWriteDone();
    EXPECT_EQ(mem.phys().read(0x204, 4), 2u);
    EXPECT_LE(waited, cfg.writeDrainCycles);
}

TEST_F(MemSystemTest, UnalignedDetected)
{
    EXPECT_EQ(mem.dataRead(0x101, 4, CpuMode::Kernel).status,
              MemStatus::Unaligned);
    EXPECT_EQ(mem.dataRead(0x103, 2, CpuMode::Kernel).status,
              MemStatus::Unaligned);
    // Bytes never cross; word at offset 2 fits.
    EXPECT_NE(mem.dataRead(0x103, 1, CpuMode::Kernel).status,
              MemStatus::Unaligned);
}

TEST_F(MemSystemTest, TbMissReportedWhenMapped)
{
    mem.setMapEnable(true);
    EXPECT_EQ(mem.dataRead(0x100, 4, CpuMode::Kernel).status,
              MemStatus::TbMiss);
    mem.tb().insert(0x100, pte::make(0, true, true));
    EXPECT_NE(mem.dataRead(0x100, 4, CpuMode::Kernel).status,
              MemStatus::TbMiss);
}

TEST_F(MemSystemTest, EboxHasPriorityOverIb)
{
    // Start an IB fill, then request an EBOX read: the EBOX read is
    // queued and completes after the IB fill.
    IbResult ib = mem.ibFetch(0x300, CpuMode::Kernel);
    EXPECT_EQ(ib.status, IbStatus::Wait);
    MemResult r = mem.dataRead(0x400, 4, CpuMode::Kernel);
    EXPECT_EQ(r.status, MemStatus::Stall);
    unsigned cycles = 0;
    bool ib_done_first = false;
    while (!mem.eboxReadDone()) {
        mem.tick();
        if (mem.ibFillDone() && !mem.eboxReadDone())
            ib_done_first = true;
        ++cycles;
        ASSERT_LT(cycles, 40u);
    }
    EXPECT_TRUE(ib_done_first);
    EXPECT_GT(cycles, cfg.readMissPenalty + 1);
    mem.takeEboxReadData();
    EXPECT_TRUE(mem.ibFillDone());
    mem.takeIbFillData();
}

TEST_F(MemSystemTest, IoWriteHookFires)
{
    PhysAddr seen_pa = 0;
    uint32_t seen_val = 0;
    mem.addIoWriteHook(0x500, 0x50F,
                       [&](PhysAddr pa, uint32_t v) {
                           seen_pa = pa;
                           seen_val = v;
                       });
    mem.dataWrite(0x508, 77, 4, CpuMode::Kernel);
    EXPECT_EQ(seen_pa, 0x508u);
    EXPECT_EQ(seen_val, 77u);
    // Outside the window: no fire.
    seen_pa = 0;
    while (mem.writeBuffer().busy())
        mem.tick();
    mem.dataWrite(0x510, 88, 4, CpuMode::Kernel);
    EXPECT_EQ(seen_pa, 0u);
}

TEST_F(MemSystemTest, IbFetchHitDeliversImmediately)
{
    mem.phys().write(0x600, 0x11223344, 4);
    mem.cache().fill(0x600);
    IbResult r = mem.ibFetch(0x600, CpuMode::Kernel);
    EXPECT_EQ(r.status, IbStatus::Data);
    EXPECT_EQ(r.data, 0x11223344u);
}

} // namespace vax::test
