// Debugging harness: run one experiment and print the key numbers.

#include <cstdio>
#include <cstdlib>

#include "cpu/cpu.hh"
#include "upc/analyzer.hh"
#include "workload/experiments.hh"

using namespace vax;

int
main(int argc, char **argv)
{
    setvbuf(stdout, nullptr, _IONBF, 0);
    uint64_t cycles = argc > 1 ? strtoull(argv[1], nullptr, 0)
                               : 1'000'000;
    int which = argc > 2 ? atoi(argv[2]) : -1;

    Cpu780 ref; // for the control-store annotations
    auto profiles = allProfiles();

    Histogram total;
    HwTotals hw_total;
    for (size_t i = 0; i < profiles.size(); ++i) {
        if (which >= 0 && static_cast<size_t>(which) != i)
            continue;
        std::printf("--- running %s (%u users) ---\n",
                    profiles[i].name.c_str(), profiles[i].numUsers);
        auto r = runExperiment(profiles[i], cycles);
        HistogramAnalyzer an(ref.controlStore(), r.hist);
        std::printf("  instr=%llu cpi=%.2f ints/instr=1/%.0f "
                    "ctxsw=1/%.0f tbmiss=%.4f\n",
                    (unsigned long long)an.instructions(),
                    an.cyclesPerInstruction(),
                    an.headwayInterrupts(),
                    an.headwayContextSwitches(),
                    an.tbMissPerInstr());
        total.add(r.hist);
        hw_total.add(r.hw);
    }

    HistogramAnalyzer an(ref.controlStore(), total);
    std::printf("\n=== composite ===\n");
    std::printf("instructions: %llu, CPI: %.3f\n",
                (unsigned long long)an.instructions(),
                an.cyclesPerInstruction());
    std::printf("groups: ");
    for (unsigned g = 0; g < static_cast<unsigned>(Group::NumGroups);
         ++g) {
        std::printf("%s=%.2f%% ", groupName(static_cast<Group>(g)),
                    100.0 * an.groupFraction(static_cast<Group>(g)));
    }
    std::printf("\nspecs: s1=%.3f s26=%.3f bdisp=%.3f idx=%.1f%%\n",
                an.spec1PerInstr(), an.spec26PerInstr(),
                an.bdispPerInstr(), 100.0 * an.indexedFraction(2));
    std::printf("reads/instr=%.3f writes/instr=%.3f unaligned=%.4f\n",
                an.totalReadsPerInstr(), an.totalWritesPerInstr(),
                an.unalignedPerInstr());
    std::printf("tbmiss/instr=%.4f (D %.4f, I %.4f) svc=%.1f cyc "
                "(stall %.1f)\n",
                an.tbMissPerInstr(), an.tbMissPerInstrD(),
                an.tbMissPerInstrI(), an.tbServiceCyclesPerMiss(),
                an.tbServiceStallPerMiss());
    std::printf("headways: swreq=%.0f ints=%.0f ctxsw=%.0f\n",
                an.headwaySwIntRequests(), an.headwayInterrupts(),
                an.headwayContextSwitches());
    std::printf("cols/instr: ");
    for (unsigned c = 0; c < static_cast<unsigned>(TimeCol::NumCols);
         ++c) {
        std::printf("%s=%.3f ", timeColName(static_cast<TimeCol>(c)),
                    an.colTotal(static_cast<TimeCol>(c)));
    }
    std::printf("\nrows/instr: ");
    for (unsigned r = 0; r < static_cast<unsigned>(Row::NumRows);
         ++r) {
        std::printf("%s=%.3f ", rowName(static_cast<Row>(r)),
                    an.rowTotal(static_cast<Row>(r)));
    }
    std::printf("\nhw: cache Imiss/instr=%.3f Dmiss/instr=%.3f "
                "IBrefs/instr=%.2f taken(simple)=%.0f%%\n",
                double(hw_total.cache.readMissesI) /
                    an.instructions(),
                double(hw_total.cache.readMissesD) /
                    an.instructions(),
                double(hw_total.ibLongwordFetches) /
                    an.instructions(),
                100.0 * an.takenFraction(PcChangeKind::SimpleCond));
    return 0;
}
