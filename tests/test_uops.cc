/**
 * @file
 * Datapath-helper tests: ALU condition codes, comparisons, shifts,
 * branch-condition evaluation (all simple-branch opcodes across all
 * condition-code states), converts, sized register writeback.
 */

#include <gtest/gtest.h>

#include "ucode/uops.hh"

namespace vax::test
{

TEST(Alu, AddSetsCarryAndOverflow)
{
    Psl psl;
    uint32_t r = aluCompute(op::ADDL2, 0xFFFFFFFF, 1, DataType::Long,
                            &psl);
    EXPECT_EQ(r, 0u);
    EXPECT_TRUE(psl.cc.z);
    EXPECT_TRUE(psl.cc.c);
    EXPECT_FALSE(psl.cc.v); // -1 + 1 does not overflow

    r = aluCompute(op::ADDL2, 0x7FFFFFFF, 1, DataType::Long, &psl);
    EXPECT_EQ(r, 0x80000000u);
    EXPECT_TRUE(psl.cc.v); // positive + positive -> negative
    EXPECT_TRUE(psl.cc.n);
}

TEST(Alu, SubComputesDstMinusSrc)
{
    Psl psl;
    // SUBL2 src, dst: dst = dst - src.
    uint32_t r = aluCompute(op::SUBL2, 3, 10, DataType::Long, &psl);
    EXPECT_EQ(r, 7u);
    EXPECT_FALSE(psl.cc.n);
    EXPECT_FALSE(psl.cc.c);

    r = aluCompute(op::SUBL2, 10, 3, DataType::Long, &psl);
    EXPECT_EQ(r, static_cast<uint32_t>(-7));
    EXPECT_TRUE(psl.cc.n);
    EXPECT_TRUE(psl.cc.c); // borrow
}

TEST(Alu, ByteWidthTruncates)
{
    Psl psl;
    uint32_t r = aluCompute(op::ADDB2, 0xFF, 0x02, DataType::Byte,
                            &psl);
    EXPECT_EQ(r, 0x01u);
    EXPECT_TRUE(psl.cc.c);
}

TEST(Alu, BooleanOps)
{
    Psl psl;
    psl.cc.c = true; // logical ops preserve C
    EXPECT_EQ(aluCompute(op::BISL2, 0x0F, 0xF0, DataType::Long, &psl),
              0xFFu);
    EXPECT_TRUE(psl.cc.c);
    EXPECT_EQ(aluCompute(op::BICL2, 0x0F, 0xFF, DataType::Long, &psl),
              0xF0u);
    EXPECT_EQ(aluCompute(op::XORL2, 0xFF, 0x0F, DataType::Long, &psl),
              0xF0u);
    EXPECT_FALSE(psl.cc.v);
}

TEST(Alu, CmpSignedAndUnsigned)
{
    Psl psl;
    cmpCc(5, 5, DataType::Long, &psl);
    EXPECT_TRUE(psl.cc.z);
    cmpCc(static_cast<uint32_t>(-1), 1, DataType::Long, &psl);
    EXPECT_TRUE(psl.cc.n);  // signed: -1 < 1
    EXPECT_FALSE(psl.cc.c); // unsigned: 0xFFFFFFFF > 1
    cmpCc(1, 2, DataType::Long, &psl);
    EXPECT_TRUE(psl.cc.n);
    EXPECT_TRUE(psl.cc.c);
}

TEST(Alu, CmpByteUsesSignExtension)
{
    Psl psl;
    cmpCc(0x80, 0x01, DataType::Byte, &psl);
    EXPECT_TRUE(psl.cc.n);  // -128 < 1 signed
    EXPECT_FALSE(psl.cc.c); // 128 > 1 unsigned
}

TEST(Shift, AshlLeftRightAndRotl)
{
    Psl psl;
    EXPECT_EQ(shiftCompute(op::ASHL, 4, 0x10, &psl), 0x100u);
    EXPECT_EQ(shiftCompute(op::ASHL, -4, 0x100, &psl), 0x10u);
    // Arithmetic right shift keeps the sign.
    EXPECT_EQ(shiftCompute(op::ASHL, -4, 0x80000000, &psl),
              0xF8000000u);
    EXPECT_EQ(shiftCompute(op::ROTL, 8, 0x12345678, &psl),
              0x34567812u);
    EXPECT_EQ(shiftCompute(op::ROTL, 0, 0xABCD, &psl), 0xABCDu);
}

struct BranchCase
{
    uint8_t opcode;
    // Expected taken for cc = (n, z, v, c) in the listed orders.
    bool when_clear;  // all cc clear
    bool when_n;
    bool when_z;
    bool when_c;
};

class BranchCondTest : public ::testing::TestWithParam<BranchCase>
{
};

TEST_P(BranchCondTest, EvaluatesCondition)
{
    const BranchCase &bc = GetParam();
    Psl psl;
    EXPECT_EQ(branchCond(bc.opcode, psl), bc.when_clear);
    psl = Psl();
    psl.cc.n = true;
    EXPECT_EQ(branchCond(bc.opcode, psl), bc.when_n);
    psl = Psl();
    psl.cc.z = true;
    EXPECT_EQ(branchCond(bc.opcode, psl), bc.when_z);
    psl = Psl();
    psl.cc.c = true;
    EXPECT_EQ(branchCond(bc.opcode, psl), bc.when_c);
}

INSTANTIATE_TEST_SUITE_P(
    AllSimpleBranches, BranchCondTest,
    ::testing::Values(
        //            opcode   clear   N      Z      C
        BranchCase{op::BRB, true, true, true, true},
        BranchCase{op::BRW, true, true, true, true},
        BranchCase{op::BNEQ, true, true, false, true},
        BranchCase{op::BEQL, false, false, true, false},
        BranchCase{op::BGTR, true, false, false, true},
        BranchCase{op::BLEQ, false, true, true, false},
        BranchCase{op::BGEQ, true, false, true, true},
        BranchCase{op::BLSS, false, true, false, false},
        BranchCase{op::BGTRU, true, true, false, false},
        BranchCase{op::BLEQU, false, false, true, true},
        BranchCase{op::BCC, true, true, true, false},
        BranchCase{op::BCS, false, false, false, true}));

TEST(BranchCond, OverflowBranches)
{
    Psl psl;
    EXPECT_FALSE(branchCond(op::BVS, psl));
    EXPECT_TRUE(branchCond(op::BVC, psl));
    psl.cc.v = true;
    EXPECT_TRUE(branchCond(op::BVS, psl));
    EXPECT_FALSE(branchCond(op::BVC, psl));
}

TEST(Cvt, SignAndZeroExtension)
{
    Psl psl;
    EXPECT_EQ(cvtCompute(op::MOVZBL, 0x80, &psl), 0x80u);
    EXPECT_FALSE(psl.cc.n);
    EXPECT_EQ(cvtCompute(op::CVTBL, 0x80, &psl), 0xFFFFFF80u);
    EXPECT_TRUE(psl.cc.n);
    EXPECT_EQ(cvtCompute(op::CVTWL, 0x8000, &psl), 0xFFFF8000u);
    EXPECT_EQ(cvtCompute(op::MOVZWL, 0x8000, &psl), 0x8000u);
    EXPECT_EQ(cvtCompute(op::CVTLB, 0x12345678, &psl), 0x78u);
    EXPECT_EQ(cvtCompute(op::CVTLW, 0x12345678, &psl), 0x5678u);
}

TEST(WriteReg, SizedMerge)
{
    uint32_t reg = 0xAABBCCDD;
    writeRegSized(&reg, 0x11, DataType::Byte);
    EXPECT_EQ(reg, 0xAABBCC11u);
    writeRegSized(&reg, 0x2233, DataType::Word);
    EXPECT_EQ(reg, 0xAABB2233u);
    writeRegSized(&reg, 0x44556677, DataType::Long);
    EXPECT_EQ(reg, 0x44556677u);
}

TEST(Trunc, Helpers)
{
    EXPECT_EQ(truncTo(0x12345678, DataType::Byte), 0x78u);
    EXPECT_EQ(truncTo(0x12345678, DataType::Word), 0x5678u);
    EXPECT_EQ(truncTo(0x12345678, DataType::Long), 0x12345678u);
    EXPECT_EQ(sextTo(0xFF, DataType::Byte), -1);
    EXPECT_TRUE(signBit(0x80, DataType::Byte));
    EXPECT_FALSE(signBit(0x80, DataType::Word));
}

} // namespace vax::test
