/**
 * @file
 * Instruction-tracer tests: hook firing, ring bounding, formatting,
 * and cross-validation of the trace against the UPC histogram.
 */

#include <gtest/gtest.h>

#include "cpu/tracer.hh"
#include "tests/sim_test_util.hh"
#include "upc/analyzer.hh"

namespace vax::test
{

using Op = Operand;

TEST(Tracer, RecordsEveryInstruction)
{
    BareMachine m;
    InstructionTracer tracer(256);
    tracer.attach(*m.cpu);
    auto &a = m.asmblr;
    for (int i = 0; i < 12; ++i)
        a.instr(op::INCL, {Op::reg(R1)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(tracer.total(), 13u);
    ASSERT_EQ(tracer.records().size(), 13u);
    // PCs are sequential (INCL R1 is two bytes).
    for (unsigned i = 1; i < 12; ++i) {
        EXPECT_EQ(tracer.records()[i].pc,
                  tracer.records()[i - 1].pc + 2);
    }
    EXPECT_EQ(tracer.records().back().opcode, op::HALT);
}

TEST(Tracer, RingIsBounded)
{
    BareMachine m;
    InstructionTracer tracer(8);
    tracer.attach(*m.cpu);
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(50), Op::reg(R3)});
    a.label("l");
    a.instr(op::SOBGTR, {Op::reg(R3), Op::branch("l")});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(tracer.total(), 52u);
    EXPECT_EQ(tracer.records().size(), 8u);
    // The last record is the HALT.
    EXPECT_EQ(tracer.records().back().opcode, op::HALT);
}

TEST(Tracer, FormatsDisassembly)
{
    BareMachine m;
    InstructionTracer tracer;
    tracer.attach(*m.cpu);
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::lit(7), Op::reg(R2)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    auto lines = tracer.format([&](VirtAddr va) {
        return m.cpu->mem().phys().readByte(va);
    });
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("MOVL S^#7, R2"), std::string::npos);
    EXPECT_NE(lines[1].find("HALT"), std::string::npos);
    EXPECT_NE(lines[0].find(" K "), std::string::npos); // kernel mode
}

TEST(Tracer, AgreesWithHistogram)
{
    BareMachine m;
    InstructionTracer tracer(100000);
    tracer.attach(*m.cpu);
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(200), Op::reg(R3)});
    a.label("l");
    a.instr(op::ADDL2, {Op::lit(1), Op::reg(R1)});
    a.instr(op::SOBGTR, {Op::reg(R3), Op::branch("l")});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    HistogramAnalyzer an(m.cpu->controlStore(), m.monitor.histogram());
    EXPECT_EQ(tracer.total(), an.instructions());
}

TEST(Tracer, ReportsDroppedRecords)
{
    BareMachine m;
    InstructionTracer tracer(8);
    tracer.attach(*m.cpu);
    auto &a = m.asmblr;
    a.instr(op::MOVL, {Op::imm(50), Op::reg(R3)});
    a.label("l");
    a.instr(op::SOBGTR, {Op::reg(R3), Op::branch("l")});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(tracer.dropped(), tracer.total() - 8);
    auto lines = tracer.format([&](VirtAddr va) {
        return m.cpu->mem().phys().readByte(va);
    });
    // A truncated trace announces itself on the first line.
    ASSERT_EQ(lines.size(), 9u);
    EXPECT_NE(lines[0].find("44 earlier records dropped"),
              std::string::npos);
}

TEST(Tracer, FullRingReportsNoDrops)
{
    InstructionTracer tracer(4);
    tracer.record(1, 0x100, op::NOP, CpuMode::Kernel);
    EXPECT_EQ(tracer.dropped(), 0u);
    auto lines = tracer.format([](VirtAddr) -> uint8_t {
        return op::NOP;
    });
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].find("dropped"), std::string::npos);
}

TEST(Tracer, AttachIsIdempotent)
{
    BareMachine m;
    InstructionTracer tracer(256);
    tracer.attach(*m.cpu);
    tracer.attach(*m.cpu); // second attach replaces, never stacks
    auto &a = m.asmblr;
    for (int i = 0; i < 5; ++i)
        a.instr(op::INCL, {Op::reg(R1)});
    a.instr(op::HALT);
    ASSERT_TRUE(m.run());
    EXPECT_EQ(tracer.total(), 6u);
}

TEST(Tracer, ClearResets)
{
    InstructionTracer tracer(4);
    tracer.record(1, 0x100, op::NOP, CpuMode::User);
    EXPECT_EQ(tracer.total(), 1u);
    tracer.clear();
    EXPECT_EQ(tracer.total(), 0u);
    EXPECT_TRUE(tracer.records().empty());
}

} // namespace vax::test
