/**
 * @file
 * Architecture-layer tests: opcode-table invariants (parameterized
 * over all implemented opcodes), specifier-byte classification over
 * all 256 encodings, F_floating and packed-decimal round trips, and
 * assembler/disassembler agreement.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/assembler.hh"
#include "arch/decimal.hh"
#include "arch/disasm.hh"
#include "arch/ffloat.hh"
#include "arch/opcodes.hh"
#include "arch/specifiers.hh"

namespace vax::test
{

// ---------------- opcode-table invariants ----------------

class OpcodeTableTest : public ::testing::TestWithParam<int>
{
};

TEST_P(OpcodeTableTest, InvariantsHold)
{
    const OpcodeInfo &info = opcodeInfo(
        static_cast<uint8_t>(GetParam()));
    if (!info.valid)
        GTEST_SKIP() << "unimplemented encoding";

    // Branch displacement, if any, is the last operand.
    for (unsigned i = 0; i < info.numOperands; ++i) {
        if (info.operands[i].access == Access::Branch) {
            EXPECT_EQ(i, info.numOperands - 1u);
        }
    }
    EXPECT_EQ(info.numSpecifiers + (info.bdispBytes ? 1 : 0),
              info.numOperands);
    EXPECT_LE(info.numSpecifiers, 6u);
    EXPECT_LE(info.bdispBytes, 2u);
    EXPECT_NE(info.flow, ExecFlow::None);
    // PC-changing instructions carry a class; group matches Table 2's
    // assignment of classes to groups.
    if (info.pck == PcChangeKind::BitBranch) {
        EXPECT_EQ(info.group, Group::Field);
    }
    if (info.pck == PcChangeKind::ProcCallRet) {
        EXPECT_EQ(info.group, Group::CallRet);
    }
    if (info.pck == PcChangeKind::SystemBr) {
        EXPECT_EQ(info.group, Group::System);
    }
    // Mnemonic resolves back to this encoding.
    EXPECT_EQ(opcodeByMnemonic(info.mnemonic), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeTableTest,
                         ::testing::Range(0, 256));

TEST(OpcodeTable, GroupsArePopulated)
{
    unsigned count[static_cast<size_t>(Group::NumGroups)] = {};
    for (unsigned i = 0; i < 256; ++i) {
        const OpcodeInfo &info = opcodeInfo(static_cast<uint8_t>(i));
        if (info.valid)
            ++count[static_cast<size_t>(info.group)];
    }
    for (unsigned g = 0; g < static_cast<unsigned>(Group::NumGroups);
         ++g) {
        EXPECT_GT(count[g], 0u)
            << "group " << groupName(static_cast<Group>(g));
    }
}

TEST(OpcodeTable, SharedFlowsShareGroup)
{
    // Every flow maps to exactly one group (the analyzer depends on
    // this to compute Table 1 from flow entries).
    Group flow_group[static_cast<size_t>(ExecFlow::NumFlows)];
    bool seen[static_cast<size_t>(ExecFlow::NumFlows)] = {};
    for (unsigned i = 0; i < 256; ++i) {
        const OpcodeInfo &info = opcodeInfo(static_cast<uint8_t>(i));
        if (!info.valid)
            continue;
        size_t f = static_cast<size_t>(info.flow);
        if (seen[f]) {
            EXPECT_EQ(flow_group[f], info.group)
                << "flow " << execFlowName(info.flow);
        }
        flow_group[f] = info.group;
        seen[f] = true;
    }
}

TEST(OpcodeTable, MnemonicLookupIsCaseInsensitive)
{
    EXPECT_EQ(opcodeByMnemonic("movl"), op::MOVL);
    EXPECT_EQ(opcodeByMnemonic("MoVl"), op::MOVL);
    EXPECT_EQ(opcodeByMnemonic("nosuch"), -1);
}

// ---------------- specifier bytes ----------------

class SpecByteTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SpecByteTest, ClassificationConsistent)
{
    uint8_t b = static_cast<uint8_t>(GetParam());
    if (isIndexPrefix(b)) {
        EXPECT_EQ(b >> 4, 4);
        return;
    }
    SpecByte sb = decodeSpecByte(b);
    if (b < 0x40) {
        EXPECT_EQ(sb.mode, AddrMode::ShortLiteral);
        EXPECT_EQ(sb.literal, b & 0x3F);
    }
    if ((b >> 4) == 5) {
        EXPECT_EQ(sb.mode, AddrMode::Register);
    }
    if (b == 0x8F) {
        EXPECT_EQ(sb.mode, AddrMode::Immediate);
    }
    if (b == 0x9F) {
        EXPECT_EQ(sb.mode, AddrMode::Absolute);
    }
    // Trailing bytes are consistent with the mode.
    unsigned trail = specTrailingBytes(sb.mode, DataType::Long);
    switch (sb.mode) {
      case AddrMode::ByteDisp:
      case AddrMode::ByteDispDef:
        EXPECT_EQ(trail, 1u);
        break;
      case AddrMode::WordDisp:
      case AddrMode::WordDispDef:
        EXPECT_EQ(trail, 2u);
        break;
      case AddrMode::LongDisp:
      case AddrMode::LongDispDef:
      case AddrMode::Absolute:
      case AddrMode::Immediate:
        EXPECT_EQ(trail, 4u);
        break;
      default:
        EXPECT_EQ(trail, 0u);
        break;
    }
    // Category mapping is total.
    EXPECT_LT(static_cast<unsigned>(specCategory(sb.mode)),
              static_cast<unsigned>(SpecCategory::NumCategories));
}

INSTANTIATE_TEST_SUITE_P(AllSpecBytes, SpecByteTest,
                         ::testing::Range(0, 256));

TEST(Specifiers, ImmediateSizeFollowsType)
{
    EXPECT_EQ(specTrailingBytes(AddrMode::Immediate, DataType::Byte),
              1u);
    EXPECT_EQ(specTrailingBytes(AddrMode::Immediate, DataType::Word),
              2u);
    EXPECT_EQ(specTrailingBytes(AddrMode::Immediate, DataType::Quad),
              8u);
}

// ---------------- F_floating ----------------

class FFloatRoundTrip : public ::testing::TestWithParam<double>
{
};

TEST_P(FFloatRoundTrip, PackUnpack)
{
    double d = GetParam();
    uint32_t f = doubleToF(d);
    double back = fToDouble(f);
    if (d == 0.0) {
        EXPECT_EQ(back, 0.0);
    } else {
        // F_floating has a 24-bit mantissa.
        EXPECT_NEAR(back, d, std::fabs(d) * 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Values, FFloatRoundTrip,
    ::testing::Values(0.0, 1.0, -1.0, 0.5, -0.5, 3.14159, -2.71828,
                      1e10, -1e10, 1e-10, 123456.789, -0.000123));

TEST(FFloat, LiteralStyleValues)
{
    // Short-literal expansion range: exponent 128..135, fraction /8.
    for (unsigned lit = 0; lit < 64; ++lit) {
        uint32_t exp = 128 + (lit >> 3);
        uint32_t f = (exp << 7) | ((lit & 7) << 4);
        double d = fToDouble(f);
        double expect =
            (0.5 + (lit & 7) / 16.0) * std::pow(2.0, double(exp) - 128);
        EXPECT_NEAR(d, expect, 1e-9) << "literal " << lit;
    }
}

TEST(FFloat, OverflowSaturates)
{
    uint32_t f = doubleToF(1e300);
    double d = fToDouble(f);
    EXPECT_GT(d, 1e30); // largest F_floating is ~1.7e38
}

TEST(FFloat, UnderflowFlushesToZero)
{
    EXPECT_EQ(doubleToF(1e-300), 0u);
}

TEST(FFloat, ReservedOperandDetected)
{
    EXPECT_TRUE(fIsReserved(0x8000));
    EXPECT_FALSE(fIsReserved(doubleToF(1.0)));
}

// ---------------- packed decimal ----------------

class PackedRoundTrip : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(PackedRoundTrip, EncodeDecode)
{
    int64_t v = GetParam();
    for (unsigned digits : {5u, 9u, 12u, 18u}) {
        int64_t mod = 1;
        for (unsigned i = 0; i < digits && mod < (1LL << 62) / 10; ++i)
            mod *= 10;
        int64_t expect = v % mod;
        auto bytes = intToPacked(v, digits);
        EXPECT_EQ(bytes.size(), packedBytes(digits));
        bool ok = false;
        int64_t back = packedToInt(bytes, digits, &ok);
        EXPECT_TRUE(ok);
        EXPECT_EQ(back, expect) << v << " @ " << digits << " digits";
    }
}

INSTANTIATE_TEST_SUITE_P(Values, PackedRoundTrip,
                         ::testing::Values(0LL, 1LL, -1LL, 42LL,
                                           -42LL, 99999LL, -99999LL,
                                           123456789012LL,
                                           -987654321LL));

TEST(PackedDecimal, InvalidNibbleDetected)
{
    std::vector<uint8_t> bytes = {0xAB, 0x1C};
    bool ok = true;
    packedToInt(bytes, 3, &ok);
    EXPECT_FALSE(ok);
}

// ---------------- assembler / disassembler agreement -----------

TEST(Assembler, DisassemblerRoundTrip)
{
    Assembler a(0x2000);
    a.instr(op::MOVL, {Operand::lit(5), Operand::reg(R3)});
    a.instr(op::ADDL3, {Operand::imm(0x1234), Operand::disp(8, R2),
                        Operand::regDef(R4)});
    a.instr(op::MOVB, {Operand::autoInc(R1), Operand::autoDec(R5)});
    a.instr(op::CMPW, {Operand::absolute(0x3000),
                       Operand::dispDef(-4, R6)});
    a.instr(op::BRB, {Operand::branch("self")});
    a.label("self");
    a.instr(op::HALT);
    auto image = a.finish();

    auto reader = [&](VirtAddr va) {
        return image.at(va - 0x2000);
    };
    VirtAddr pc = 0x2000;
    std::vector<std::string> expect = {
        "MOVL S^#5, R3",
        "ADDL3 I^#0x1234, B^8(R2), (R4)",
        "MOVB (R1)+, -(R5)",
        "CMPW @#0x3000, @B^-4(R6)",
    };
    for (const auto &e : expect) {
        auto d = disassemble(pc, reader);
        EXPECT_TRUE(d.valid);
        EXPECT_EQ(d.text, e);
        pc += d.length;
    }
}

TEST(Assembler, BranchRangeChecked)
{
    // A byte branch over >127 bytes of padding must be fatal; check
    // that a word branch over the same span is fine.
    Assembler a(0);
    a.instr(op::BRW, {Operand::branch("far")});
    a.space(1000);
    a.label("far");
    a.instr(op::HALT);
    auto image = a.finish();
    EXPECT_GT(image.size(), 1000u);
}

TEST(Assembler, LabelsAndFixups)
{
    Assembler a(0x100);
    a.addrLong("target");
    a.label("target");
    a.lword(0xCAFEBABE);
    auto image = a.finish();
    // First longword holds the address of "target" (0x104).
    uint32_t v = image[0] | (image[1] << 8) | (image[2] << 16) |
        (uint32_t(image[3]) << 24);
    EXPECT_EQ(v, 0x104u);
}

TEST(Assembler, CaseTableDisplacements)
{
    Assembler a(0);
    a.caseTable({"t0", "t1"});
    a.label("t0");
    a.byte(1);
    a.label("t1");
    a.byte(2);
    auto image = a.finish();
    // Displacements are relative to the table base (address 0).
    EXPECT_EQ(image[0] | (image[1] << 8), 4u);
    EXPECT_EQ(image[2] | (image[3] << 8), 5u);
}

TEST(Assembler, OperandCountMismatchIsFatal)
{
    // fatal() exits; use death test.
    EXPECT_DEATH({
        Assembler a(0);
        a.instr(op::MOVL, {Operand::reg(R1)});
    }, "expects");
}

TEST(Assembler, AlignPads)
{
    Assembler a(0x10);
    a.byte(1);
    a.align(8);
    EXPECT_EQ(a.here() % 8, 0u);
}

} // namespace vax::test
