/**
 * @file
 * Parallel-driver and merge-layer tests: SimPool determinism against
 * the serial composite, merge-order independence, the weighted merge
 * operators, histogram CSV round-trips (including empty-name and
 * maximum-upc rows), and physical-access alignment symmetry.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cpu/cpu.hh"
#include "driver/sim_pool.hh"
#include "mem/mem_system.hh"
#include "upc/analyzer.hh"
#include "upc/hist_io.hh"
#include "upc/monitor.hh"
#include "workload/experiments.hh"

namespace vax::test
{

namespace
{

/** Cycles per experiment: small enough to keep the suite fast, large
 *  enough that every workload boots and schedules real work. */
constexpr uint64_t kCycles = 150'000;

void
expectHistogramsEqual(const Histogram &a, const Histogram &b)
{
    ASSERT_EQ(a.normal.size(), b.normal.size());
    EXPECT_TRUE(a.normal == b.normal);
    EXPECT_TRUE(a.stalled == b.stalled);
}

std::string
tempCsvPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "upc780_" + tag +
        ".csv";
}

} // anonymous namespace

// ===================== merge layer =====================

TEST(MergeLayer, HistogramWeightedMerge)
{
    Histogram a, b;
    a.normal[3] = 7;
    a.stalled[3] = 2;
    b.normal[3] = 1;
    b.stalled[9] = 5;
    a.merge(b, 3);
    EXPECT_EQ(a.normal[3], 10u);
    EXPECT_EQ(a.stalled[3], 2u);
    EXPECT_EQ(a.stalled[9], 15u);
}

TEST(MergeLayer, WeightedCompositeOneCall)
{
    Histogram a, b;
    a.normal[1] = 2;
    b.normal[1] = 5;
    b.stalled[2] = 1;
    Histogram total = weightedComposite({&a, &b}, {2, 1});
    EXPECT_EQ(total.normal[1], 9u);
    EXPECT_EQ(total.stalled[2], 1u);
    // Missing weights default to 1; null parts are skipped.
    Histogram total2 = weightedComposite({&a, nullptr, &b});
    EXPECT_EQ(total2.normal[1], 7u);
}

TEST(MergeLayer, StatsAccumulateOperators)
{
    CacheStats c1, c2;
    c1.readRefsD = 10;
    c2.readRefsD = 5;
    c2.writeHits = 3;
    c1 += c2;
    EXPECT_EQ(c1.readRefsD, 15u);
    EXPECT_EQ(c1.writeHits, 3u);

    TbStats t1, t2;
    t1.missesI = 4;
    t2.missesI = 2;
    t2.processFlushes = 7;
    t1 += t2;
    EXPECT_EQ(t1.missesI, 6u);
    EXPECT_EQ(t1.processFlushes, 7u);

    HwCounters h1, h2;
    h1.instructions = 100;
    h2.instructions = 11;
    h2.contextSwitches = 2;
    h1 += h2;
    EXPECT_EQ(h1.instructions, 111u);
    EXPECT_EQ(h1.contextSwitches, 2u);

    // Weighted accumulate scales every field.
    HwCounters h3;
    h3.accumulate(h2, 5);
    EXPECT_EQ(h3.instructions, 55u);
    EXPECT_EQ(h3.contextSwitches, 10u);
}

TEST(MergeLayer, AnalyzerWeightedCompositeMatchesManualMerge)
{
    Cpu780 ref;
    const ControlStore &cs = ref.controlStore();
    Histogram a, b;
    a.normal[cs.entries.iid] = 100;
    b.normal[cs.entries.iid] = 50;

    HistogramAnalyzer an(cs, {&a, &b}, {1, 2});
    EXPECT_EQ(an.instructions(), 200u);

    Histogram manual;
    manual.merge(a, 1);
    manual.merge(b, 2);
    HistogramAnalyzer an2(cs, manual);
    EXPECT_EQ(an2.instructions(), an.instructions());
    EXPECT_DOUBLE_EQ(an2.cyclesPerInstruction(),
                     an.cyclesPerInstruction());
}

// ===================== histogram CSV =====================

TEST(HistIo, RoundTripRealHistogram)
{
    Cpu780 ref;
    ExperimentResult r =
        runExperiment(timesharingLightProfile(), kCycles);
    ASSERT_GT(r.hist.cycles(), 0u);

    std::string path = tempCsvPath("roundtrip");
    ASSERT_TRUE(saveHistogramCsv(path, r.hist, ref.controlStore()));
    Histogram reloaded;
    ASSERT_TRUE(loadHistogramCsv(path, &reloaded));
    expectHistogramsEqual(r.hist, reloaded);
    std::remove(path.c_str());
}

TEST(HistIo, LoadsEmptyNameAndMaxUpcRows)
{
    // The default annotation name is "", so a histogram containing an
    // unannotated micro-address saves as "upc,,row,...".  The old
    // sscanf("%[^,]") parser refused the empty field; the split-based
    // parser must accept it, along with the largest legal upc.
    std::string path = tempCsvPath("emptyname");
    FILE *f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fprintf(f, "upc,name,row,mem,ib,normal,stalled\n");
    fprintf(f, "5,,EXEC SIMPLE,none,0,3,1\n");          // empty name
    fprintf(f, "7,IID,DECODE,none,1,40,2\n");           // old format
    fprintf(f, "%u,,EXEC SIMPLE,none,0,9,4\n",
            ControlStore::capacity - 1);                // max upc
    fclose(f);

    Histogram h;
    ASSERT_TRUE(loadHistogramCsv(path, &h));
    EXPECT_EQ(h.normal[5], 3u);
    EXPECT_EQ(h.stalled[5], 1u);
    EXPECT_EQ(h.normal[7], 40u);
    EXPECT_EQ(h.stalled[7], 2u);
    EXPECT_EQ(h.normal[ControlStore::capacity - 1], 9u);
    EXPECT_EQ(h.stalled[ControlStore::capacity - 1], 4u);
    std::remove(path.c_str());
}

TEST(HistIo, RejectsMalformedAndOutOfRangeRows)
{
    std::string path = tempCsvPath("badrows");
    Histogram h;

    FILE *f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fprintf(f, "upc,name,row,mem,ib,normal,stalled\n");
    fprintf(f, "1,NOP,EXEC SIMPLE,none,0,3\n"); // six fields
    fclose(f);
    EXPECT_FALSE(loadHistogramCsv(path, &h));

    f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fprintf(f, "upc,name,row,mem,ib,normal,stalled\n");
    fprintf(f, "%u,NOP,EXEC SIMPLE,none,0,3,0\n",
            ControlStore::capacity); // out of range
    fclose(f);
    EXPECT_FALSE(loadHistogramCsv(path, &h));

    f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fprintf(f, "upc,name,row,mem,ib,normal,stalled\n");
    fprintf(f, "2,NOP,EXEC SIMPLE,none,0,x,0\n"); // non-numeric count
    fclose(f);
    EXPECT_FALSE(loadHistogramCsv(path, &h));

    std::remove(path.c_str());
}

// ===================== physical-access symmetry =====================

TEST(MemSystemAlignment, PhysReadRejectsLongwordCrossing)
{
    // physWrite always asserted !crossesLongword; physRead silently
    // straddled a cache-block boundary instead.  The paths must be
    // symmetric.
    MemConfig cfg;
    EXPECT_DEATH(
        {
            MemSystem mem(cfg, 1);
            mem.physRead(0x1002);
        },
        "crossesLongword");
}

TEST(MemSystemAlignment, AlignedPhysAccessesStillWork)
{
    MemConfig cfg;
    MemSystem mem(cfg, 1);
    MemResult r = mem.physRead(0x1000);
    EXPECT_TRUE(r.status == MemStatus::Ok ||
                r.status == MemStatus::Stall);
}

// ===================== the pool =====================

TEST(SimPool, ResultsComeBackInJobOrder)
{
    auto profiles = allProfiles();
    std::vector<SimJob> jobs;
    for (const auto &p : profiles)
        jobs.push_back(SimJob::forProfile(p, 20'000));
    std::vector<ExperimentResult> results = SimPool(4).run(jobs);
    ASSERT_EQ(results.size(), profiles.size());
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].name, profiles[i].name);
        EXPECT_GT(results[i].wallSeconds, 0.0);
    }
}

TEST(SimPool, FourJobPoolMatchesSerialCompositeBitForBit)
{
    // The acceptance contract: a pooled composite is byte-identical
    // to the serial path, at any worker count, merged in any order.
    CompositeResult serial = runComposite(kCycles);
    CompositeResult pooled = runCompositePooled(kCycles, 4);

    ASSERT_EQ(serial.parts.size(), pooled.parts.size());
    expectHistogramsEqual(serial.hist, pooled.hist);
    EXPECT_EQ(serial.hw.counters.instructions,
              pooled.hw.counters.instructions);
    EXPECT_EQ(serial.hw.counters.cycles, pooled.hw.counters.cycles);
    EXPECT_EQ(serial.hw.cache.readMissesD,
              pooled.hw.cache.readMissesD);
    EXPECT_EQ(serial.hw.tb.missesI, pooled.hw.tb.missesI);
    EXPECT_EQ(serial.hw.terminalLinesIn, pooled.hw.terminalLinesIn);
    EXPECT_EQ(serial.hw.diskTransfers, pooled.hw.diskTransfers);
    for (size_t i = 0; i < serial.parts.size(); ++i) {
        expectHistogramsEqual(serial.parts[i].hist,
                              pooled.parts[i].hist);
    }

    // Merge the pooled parts in reverse order: counter sums are
    // commutative, so the bits cannot change.
    Histogram reversed;
    for (size_t i = pooled.parts.size(); i-- > 0;)
        reversed.merge(pooled.parts[i].hist);
    expectHistogramsEqual(serial.hist, reversed);

    // And the Table 8 numbers derived from them agree exactly.
    Cpu780 ref;
    HistogramAnalyzer a(ref.controlStore(), serial.hist);
    HistogramAnalyzer b(ref.controlStore(), pooled.hist);
    EXPECT_EQ(a.instructions(), b.instructions());
    EXPECT_EQ(a.totalCycles(), b.totalCycles());
    for (unsigned r = 0; r < static_cast<unsigned>(Row::NumRows);
         ++r) {
        for (unsigned c = 0;
             c < static_cast<unsigned>(TimeCol::NumCols); ++c) {
            EXPECT_DOUBLE_EQ(
                a.cell(static_cast<Row>(r), static_cast<TimeCol>(c)),
                b.cell(static_cast<Row>(r), static_cast<TimeCol>(c)));
        }
    }
}

TEST(SimPool, WorkerCountDoesNotChangeResults)
{
    std::vector<SimJob> jobs = compositeJobs(40'000);
    std::vector<ExperimentResult> one = SimPool(1).run(jobs);
    std::vector<ExperimentResult> three = SimPool(3).run(jobs);
    ASSERT_EQ(one.size(), three.size());
    for (size_t i = 0; i < one.size(); ++i)
        expectHistogramsEqual(one[i].hist, three[i].hist);
}

} // namespace vax::test
