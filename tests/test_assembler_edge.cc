/**
 * @file
 * Assembler edge cases: displacement-size selection at exact
 * boundaries, immediate sizing by operand type, index-prefix
 * encoding, and error paths.
 */

#include <gtest/gtest.h>

#include "arch/assembler.hh"
#include "arch/disasm.hh"

namespace vax::test
{

using Op = Operand;

namespace
{

std::vector<uint8_t>
assembleOne(uint8_t opcode, const std::vector<Operand> &ops)
{
    Assembler a(0x1000);
    a.instr(opcode, ops);
    return a.finish();
}

} // anonymous namespace

TEST(AssemblerEdge, DisplacementSizeBoundaries)
{
    // 127 fits in a byte displacement (mode 0xA).
    auto img = assembleOne(op::MOVL, {Op::disp(127, R2), Op::reg(R1)});
    EXPECT_EQ(img[1], 0xA2);
    EXPECT_EQ(img.size(), 4u); // opcode + spec byte + disp + reg

    // 128 needs a word displacement (mode 0xC).
    img = assembleOne(op::MOVL, {Op::disp(128, R2), Op::reg(R1)});
    EXPECT_EQ(img[1], 0xC2);

    // -128 still fits in a byte.
    img = assembleOne(op::MOVL, {Op::disp(-128, R2), Op::reg(R1)});
    EXPECT_EQ(img[1], 0xA2);
    EXPECT_EQ(img[2], 0x80);

    // -129 needs a word.
    img = assembleOne(op::MOVL, {Op::disp(-129, R2), Op::reg(R1)});
    EXPECT_EQ(img[1], 0xC2);

    // 32767 fits in a word; 32768 needs a longword (mode 0xE).
    img = assembleOne(op::MOVL, {Op::disp(32767, R2), Op::reg(R1)});
    EXPECT_EQ(img[1], 0xC2);
    img = assembleOne(op::MOVL, {Op::disp(32768, R2), Op::reg(R1)});
    EXPECT_EQ(img[1], 0xE2);
}

TEST(AssemblerEdge, DeferredUsesBMode)
{
    auto img = assembleOne(op::MOVL,
                           {Op::dispDef(8, R3), Op::reg(R1)});
    EXPECT_EQ(img[1], 0xB3);
    img = assembleOne(op::MOVL, {Op::dispDef(300, R3), Op::reg(R1)});
    EXPECT_EQ(img[1], 0xD3);
}

TEST(AssemblerEdge, ImmediateSizeFollowsOperandType)
{
    // MOVB immediate: one data byte after 0x8F.
    auto img = assembleOne(op::MOVB, {Op::imm(0x12), Op::reg(R1)});
    EXPECT_EQ(img[1], 0x8F);
    EXPECT_EQ(img.size(), 1u + 2u + 1u);
    // MOVW: two bytes; MOVL: four.
    img = assembleOne(op::MOVW, {Op::imm(0x1234), Op::reg(R1)});
    EXPECT_EQ(img.size(), 1u + 3u + 1u);
    img = assembleOne(op::MOVL, {Op::imm(0x12345678), Op::reg(R1)});
    EXPECT_EQ(img.size(), 1u + 5u + 1u);
}

TEST(AssemblerEdge, IndexPrefixPrecedesBase)
{
    auto img = assembleOne(op::MOVL,
                           {Op::disp(4, R2).idx(R5), Op::reg(R1)});
    EXPECT_EQ(img[1], 0x45); // index prefix, Rx = R5
    EXPECT_EQ(img[2], 0xA2); // byte displacement off R2
}

TEST(AssemblerEdge, RegisterModesEncode)
{
    EXPECT_EQ(assembleOne(op::TSTL, {Op::reg(R9)})[1], 0x59);
    EXPECT_EQ(assembleOne(op::TSTL, {Op::regDef(R9)})[1], 0x69);
    EXPECT_EQ(assembleOne(op::TSTL, {Op::autoDec(R9)})[1], 0x79);
    EXPECT_EQ(assembleOne(op::TSTL, {Op::autoInc(R9)})[1], 0x89);
    EXPECT_EQ(assembleOne(op::TSTL, {Op::autoIncDef(R9)})[1], 0x99);
    EXPECT_EQ(assembleOne(op::TSTL, {Op::absolute(0x100)})[1], 0x9F);
    EXPECT_EQ(assembleOne(op::TSTL, {Op::lit(63)})[1], 0x3F);
}

TEST(AssemblerEdge, ErrorPathsAreFatal)
{
    EXPECT_DEATH({
        Assembler a(0);
        a.instr(op::MOVL, {Op::lit(1), Op::lit(2)}); // literal dest
        a.finish();
    }, "literal");
    EXPECT_DEATH({
        Assembler a(0);
        a.label("x");
        a.label("x"); // duplicate
    }, "duplicate");
    EXPECT_DEATH({
        Assembler a(0);
        a.instr(op::BRB, {Op::branch("far")});
        a.space(200);
        a.label("far");
        a.finish(); // byte branch out of range
    }, "out of range");
    EXPECT_DEATH({
        Assembler a(0);
        a.instr(op::BRB, {Op::branch("nowhere")});
        a.finish();
    }, "undefined label");
}

TEST(AssemblerEdge, RelativeDisassemblesToTarget)
{
    Assembler a(0x2000);
    a.instr(op::TSTL, {Op::rel("target")});
    a.label("target");
    a.lword(1);
    auto img = a.finish();
    auto d = disassemble(0x2000, [&](VirtAddr va) {
        return img.at(va - 0x2000);
    });
    // Word PC-relative: mode 0xCF.
    EXPECT_EQ(img[1], 0xCF);
    EXPECT_TRUE(d.valid);
    EXPECT_EQ(d.length, 4u);
}

TEST(AssemblerEdge, EntryMaskAndSpaceFill)
{
    Assembler a(0);
    a.entryMask(0x0C);
    a.space(3, 0xEE);
    auto img = a.finish();
    ASSERT_EQ(img.size(), 5u);
    EXPECT_EQ(img[0], 0x0C);
    EXPECT_EQ(img[1], 0x00);
    EXPECT_EQ(img[2], 0xEE);
}

} // namespace vax::test
