/**
 * @file
 * VMS-lite service and robustness tests: system-call semantics,
 * image restart, terminal-silo overflow, and scheduling at scale.
 */

#include <gtest/gtest.h>

#include "arch/assembler.hh"
#include "cpu/cpu.hh"
#include "os/abi.hh"
#include "os/vms.hh"
#include "upc/analyzer.hh"
#include "upc/monitor.hh"

namespace vax::test
{

using Op = Operand;

namespace
{

struct OsRig
{
    explicit OsRig(const VmsConfig &cfg = VmsConfig())
        : os(cpu, monitor, cfg)
    {
        cpu.setCycleSink(&monitor);
    }

    uint32_t
    userLong(unsigned proc, uint32_t p0va)
    {
        return cpu.mem().phys().read(os.processImagePa(proc) + p0va,
                                     4);
    }

    Cpu780 cpu;
    UpcMonitor monitor;
    VmsLite os;
};

} // anonymous namespace

TEST(OsServices, GetsDeliversCannedLine)
{
    OsRig rig;
    Assembler a(0);
    a.lword(0); // keep address 0 free
    a.label("buf");
    a.space(32);
    a.label("done");
    a.lword(0);
    a.label("entry");
    a.instr(op::MOVAB, {Op::rel("buf"), Op::reg(R1)});
    a.instr(op::CHMK, {Op::imm(abi::sysGets)});
    a.instr(op::MOVL, {Op::imm(1), Op::rel("done")});
    a.label("spin");
    a.instr(op::BRB, {Op::branch("spin")});

    UserProgram prog;
    prog.entry = a.addrOf("entry");
    uint32_t buf = a.addrOf("buf");
    uint32_t done = a.addrOf("done");
    prog.image = a.finish();
    rig.os.addProcess(prog);
    rig.os.boot();
    rig.cpu.run(100000);

    ASSERT_EQ(rig.userLong(0, done), 1u);
    // The canned line "run analysis 7\r\n" arrived in the buffer.
    std::string got;
    for (unsigned i = 0; i < 4; ++i)
        got.push_back(static_cast<char>(
            rig.cpu.mem().phys().readByte(
                rig.os.processImagePa(0) + buf + i)));
    EXPECT_EQ(got, "run ");
}

TEST(OsServices, PutsNotifiesTerminal)
{
    OsRig rig;
    Assembler a(0);
    a.lword(0);
    a.label("msg");
    a.ascii("hello operator$pad-pad-pad-pad--");
    a.label("entry");
    a.instr(op::MOVAB, {Op::rel("msg"), Op::reg(R1)});
    a.instr(op::MOVL, {Op::imm(32), Op::reg(R2)});
    a.instr(op::CHMK, {Op::imm(abi::sysPuts)});
    a.label("spin");
    a.instr(op::BRB, {Op::branch("spin")});

    UserProgram prog;
    prog.entry = a.addrOf("entry");
    prog.image = a.finish();
    rig.os.addProcess(prog);

    unsigned outputs = 0;
    uint32_t last_value = 0;
    rig.os.onTerminalOutput([&](uint32_t v) {
        ++outputs;
        last_value = v;
    });
    rig.os.boot();
    rig.cpu.run(100000);

    EXPECT_EQ(outputs, 1u);
    // The kernel LOCCed for '$' in the staging buffer: R0 (remaining
    // at match) is what it writes to the notify port; '$' is at
    // offset 14 of 32 -> remaining = 18.
    EXPECT_EQ(last_value, 18u);
}

TEST(OsServices, ExitRestartsImage)
{
    OsRig rig;
    Assembler a(0);
    a.lword(0);
    a.label("count");
    a.lword(0);
    a.label("entry");
    a.instr(op::INCL, {Op::rel("count")});
    a.instr(op::CHMK, {Op::imm(abi::sysExit)});
    // Never reached: EXIT restarts at entry.
    a.instr(op::HALT);

    UserProgram prog;
    prog.entry = a.addrOf("entry");
    uint32_t count = a.addrOf("count");
    prog.image = a.finish();
    rig.os.addProcess(prog);
    rig.os.boot();
    rig.cpu.run(200000);
    ASSERT_FALSE(rig.cpu.halted());
    // The image restarted many times.
    EXPECT_GT(rig.userLong(0, count), 50u);
}

TEST(OsServices, MailboxOverflowDropsLines)
{
    OsRig rig;
    Assembler a(0);
    a.lword(0);
    a.label("entry");
    a.label("spin");
    a.instr(op::BRB, {Op::branch("spin")});
    UserProgram prog;
    prog.entry = a.addrOf("entry");
    prog.image = a.finish();
    rig.os.addProcess(prog);
    rig.os.boot();
    // Flood the silo without letting the machine drain it.
    for (unsigned i = 0; i < abi::mbxEntries + 20; ++i)
        rig.os.postTerminalLine(0);
    // The ring held; the machine still runs.
    rig.cpu.run(50000);
    EXPECT_FALSE(rig.cpu.halted());
}

TEST(OsServices, ManyProcessesTimeshare)
{
    VmsConfig cfg;
    cfg.timerIntervalCycles = 4000;
    cfg.quantumTicks = 1;
    OsRig rig(cfg);
    const unsigned nproc = 24;
    std::vector<uint32_t> counter_va(nproc);
    for (unsigned p = 0; p < nproc; ++p) {
        Assembler a(0);
        a.lword(0);
        a.label("count");
        a.lword(0);
        a.label("entry");
        a.label("loop");
        a.instr(op::INCL, {Op::rel("count")});
        a.instr(op::BRB, {Op::branch("loop")});
        UserProgram prog;
        prog.entry = a.addrOf("entry");
        prog.terminalId = p;
        counter_va[p] = a.addrOf("count");
        prog.image = a.finish();
        rig.os.addProcess(prog);
    }
    rig.os.boot();
    rig.cpu.run(1200000);
    unsigned progressed = 0;
    for (unsigned p = 0; p < nproc; ++p)
        progressed += rig.userLong(p, counter_va[p]) > 0;
    EXPECT_EQ(progressed, nproc);
    EXPECT_GT(rig.cpu.hw().contextSwitches, nproc);
}

TEST(OsServices, WaitingMachineIdlesInNull)
{
    OsRig rig;
    Assembler a(0);
    a.lword(0);
    a.label("entry");
    a.instr(op::CHMK, {Op::imm(abi::sysWaitTerm)});
    a.instr(op::BRB, {Op::branch("entry")});
    UserProgram prog;
    prog.entry = a.addrOf("entry");
    prog.image = a.finish();
    rig.os.addProcess(prog);
    rig.os.boot();
    rig.cpu.run(120000);
    // Monitor gated off while Null runs.
    EXPECT_FALSE(rig.monitor.collecting());
    uint64_t measured = rig.monitor.histogram().cycles();
    // Much of the run was idle and thus unmeasured.
    EXPECT_LT(measured, rig.cpu.cycles() / 2);
    // Timer interrupts kept being measured (ISR re-arms collection).
    HistogramAnalyzer an(rig.cpu.controlStore(),
                         rig.monitor.histogram());
    EXPECT_GT(an.headwayInterrupts(), 0.0);
}

} // namespace vax::test
