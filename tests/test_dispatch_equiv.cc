/**
 * @file
 * Decoded-dispatch equivalence tests.
 *
 * The decoded microword engine (flat function-pointer table, packed
 * operands, batched monitor counts) is a pure execution-speed change;
 * SimConfig::legacyDispatch keeps the original type-erased engine
 * alive precisely so this file can prove that.  The bar is
 * byte-identity: for every workload profile, the two engines must
 * produce bit-for-bit equal histogram banks and hardware counters, a
 * byte-identical stats dump for the five-workload composite, and a
 * checkpoint written by one engine must restore into the other and
 * continue the identical cycle stream.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/snapshot.hh"
#include "support/stats.hh"
#include "workload/experiments.hh"
#include "workload/profile.hh"

using namespace vax;

namespace
{

/** Cycles per experiment: small enough to keep the suite quick, large
 *  enough that every profile gets through boot and into real work. */
constexpr uint64_t kCycles = 60'000;

SimConfig
engineConfig(const WorkloadProfile &p, bool legacy)
{
    SimConfig sim;
    sim.seed = p.seed;
    sim.legacyDispatch = legacy;
    return sim;
}

/** Histograms must match bank-for-bank, not just in the totals. */
void
expectHistogramsIdentical(const Histogram &a, const Histogram &b,
                          const std::string &what)
{
    EXPECT_EQ(a.normal, b.normal) << what << ": normal bank differs";
    EXPECT_EQ(a.stalled, b.stalled) << what << ": stalled bank differs";
}

} // anonymous namespace

TEST(DispatchEquiv, FiveWorkloadCompositeByteIdentical)
{
    CompositeResult decoded;
    CompositeResult legacy;
    for (const WorkloadProfile &p : allProfiles()) {
        ExperimentResult rd =
            runExperiment(p, kCycles, engineConfig(p, false));
        ExperimentResult rl =
            runExperiment(p, kCycles, engineConfig(p, true));

        // The engines must agree cycle-for-cycle, so every per-part
        // measurement is identical, not merely the composite.
        expectHistogramsIdentical(rd.hist, rl.hist, p.name);
        EXPECT_EQ(rd.hw.counters.cycles, rl.hw.counters.cycles)
            << p.name;
        EXPECT_EQ(rd.hw.counters.instructions,
                  rl.hw.counters.instructions) << p.name;
        EXPECT_EQ(rd.hw.counters.specifiers,
                  rl.hw.counters.specifiers) << p.name;
        EXPECT_EQ(rd.hw.dataReads, rl.hw.dataReads) << p.name;
        EXPECT_EQ(rd.hw.dataWrites, rl.hw.dataWrites) << p.name;

        decoded.hist.add(rd.hist);
        decoded.hw.add(rd.hw);
        decoded.parts.push_back(std::move(rd));
        legacy.hist.add(rl.hist);
        legacy.hw.add(rl.hw);
        legacy.parts.push_back(std::move(rl));
    }

    expectHistogramsIdentical(decoded.hist, legacy.hist, "composite");

    // The full deterministic stats mirror -- every registered counter
    // of the composite and its parts -- must serialize byte-equal.
    stats::Registry rd;
    registerCompositeStats(rd, decoded);
    stats::Registry rl;
    registerCompositeStats(rl, legacy);
    EXPECT_EQ(rd.dumpJson(), rl.dumpJson());
}

TEST(DispatchEquiv, CheckpointCrossesEngines)
{
    // legacyDispatch selects an engine, not a different simulation, so
    // it stays out of the snapshot fingerprint: a checkpoint taken
    // mid-instruction-stream under one engine must restore under the
    // other and produce the same future.
    const WorkloadProfile p = timesharingLightProfile();
    VmsConfig vms;
    vms.timerIntervalCycles = 20000;
    vms.quantumTicks = 4;

    // Reference: the decoded engine, uninterrupted.
    Experiment ref(p, kCycles, engineConfig(p, false), vms);
    ref.runChunk();
    ExperimentResult straight = ref.takeResult();

    // Legacy engine runs a third of the way, checkpoints...
    Experiment el(p, kCycles, engineConfig(p, true), vms);
    el.runChunk(kCycles / 3);
    EXPECT_FALSE(el.done());
    snap::Serializer s;
    el.save(s);

    // ...and a decoded-engine machine picks the run up.
    Experiment ed(p, kCycles, engineConfig(p, false), vms);
    snap::Deserializer d(s.finish());
    ed.restore(d);
    ed.runChunk();
    ExperimentResult resumed = ed.takeResult();

    expectHistogramsIdentical(straight.hist, resumed.hist,
                              "cross-engine resume");
    EXPECT_EQ(straight.hw.counters.cycles,
              resumed.hw.counters.cycles);
    EXPECT_EQ(straight.hw.counters.instructions,
              resumed.hw.counters.instructions);

    // And the mirror-image hand-off: decoded checkpoint, legacy resume.
    Experiment e2(p, kCycles, engineConfig(p, false), vms);
    e2.runChunk(kCycles / 3);
    snap::Serializer s2;
    e2.save(s2);
    Experiment e3(p, kCycles, engineConfig(p, true), vms);
    snap::Deserializer d2(s2.finish());
    e3.restore(d2);
    e3.runChunk();
    ExperimentResult resumed2 = e3.takeResult();

    expectHistogramsIdentical(straight.hist, resumed2.hist,
                              "decoded-to-legacy resume");
    EXPECT_EQ(straight.hw.counters.cycles,
              resumed2.hw.counters.cycles);
}
