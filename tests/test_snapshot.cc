/**
 * @file
 * Checkpoint/restore acceptance tests.
 *
 * The correctness bar is byte-transparency: snapshot -> restore ->
 * run-to-end must be byte-identical to the uninterrupted run, for the
 * whole machine image (every component the snapshot covers), with and
 * without fault injection in flight.  On top sit the recovery paths:
 * pool retries resuming from the last checkpoint, --resume of an
 * interrupted composite, and the fail-loud handling of corrupt,
 * truncated and version-mismatched snapshot files.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/checkpoint.hh"
#include "driver/sim_pool.hh"
#include "support/faultinject.hh"
#include "support/interrupt.hh"
#include "support/snapshot.hh"
#include "workload/experiments.hh"
#include "workload/profile.hh"

using namespace vax;

namespace
{

/** The whole simulated machine as one byte image. */
std::vector<uint8_t>
machineBytes(const Experiment &e)
{
    snap::Serializer s;
    e.save(s);
    return s.finish();
}

/** Every deterministic field of a result as one byte image. */
std::vector<uint8_t>
resultBytes(const ExperimentResult &r)
{
    snap::Serializer s;
    s.beginSection("cmp");
    r.hist.save(s);
    r.hw.counters.save(s);
    r.hw.cache.save(s);
    r.hw.tb.save(s);
    s.putU64(r.hw.faults.parityErrors);
    s.putU64(r.hw.faults.machineChecks);
    s.putU64(r.hw.faults.osMachineChecks);
    s.putU64(r.hw.ibLongwordFetches);
    s.putU64(r.hw.dataReads);
    s.putU64(r.hw.dataWrites);
    s.putU64(r.hw.terminalLinesIn);
    s.putU64(r.hw.terminalLinesOut);
    s.putU64(r.hw.diskTransfers);
    s.endSection();
    return s.finish();
}

/** The standard experiment wiring the pool uses (SimJob::forProfile). */
VmsConfig
poolVms()
{
    VmsConfig vms;
    vms.timerIntervalCycles = 20000;
    vms.quantumTicks = 4;
    return vms;
}

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
scratchDir(const char *name)
{
    std::string dir = ::testing::TempDir() + "upc780_" + name;
    std::string cmd = "rm -rf '" + dir + "'";
    (void)!std::system(cmd.c_str());
    return dir;
}

} // anonymous namespace

// ---------------------------------------------------------------
// Snapshot stream format.
// ---------------------------------------------------------------

TEST(SnapshotFormat, PrimitivesRoundTrip)
{
    snap::Serializer s;
    s.beginSection("prims");
    s.putU8(0xAB);
    s.putU16(0xBEEF);
    s.putU32(0xDEADBEEF);
    s.putU64(0x0123456789ABCDEFull);
    s.putI64(-42);
    s.putBool(true);
    s.putDouble(3.25);
    s.putString("vax-11/780");
    s.putVecU64({1, 2, 3});
    s.endSection();

    snap::Deserializer d(s.finish());
    d.beginSection("prims");
    EXPECT_EQ(d.getU8(), 0xAB);
    EXPECT_EQ(d.getU16(), 0xBEEF);
    EXPECT_EQ(d.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(d.getU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(d.getI64(), -42);
    EXPECT_TRUE(d.getBool());
    EXPECT_EQ(d.getDouble(), 3.25);
    EXPECT_EQ(d.getString(), "vax-11/780");
    EXPECT_EQ(d.getVecU64(), (std::vector<uint64_t>{1, 2, 3}));
    d.endSection();
    d.finish();
}

TEST(SnapshotFormat, RleBlobRoundTrip)
{
    std::vector<uint8_t> blob(4096, 0);
    blob[0] = 1;
    blob[100] = 2;
    blob[4095] = 3;
    snap::Serializer s;
    s.beginSection("blob");
    s.putBytesRle(blob.data(), blob.size());
    s.endSection();
    std::vector<uint8_t> image = s.finish();
    // Mostly-zero blobs must compress: that is why RLE exists.
    EXPECT_LT(image.size(), blob.size() / 2);

    snap::Deserializer d(std::move(image));
    d.beginSection("blob");
    std::vector<uint8_t> out(blob.size(), 0xFF);
    d.getBytesRle(out.data(), out.size());
    d.endSection();
    d.finish();
    EXPECT_EQ(out, blob);
}

TEST(SnapshotFormat, CorruptPayloadFailsCrc)
{
    snap::Serializer s;
    s.beginSection("sec");
    s.putU64(12345);
    s.endSection();
    std::vector<uint8_t> image = s.finish();
    // Flip one payload byte: magic(8) + version(4) + nameLen(4) +
    // name(3) + payloadLen(8) puts the payload at offset 27.
    image[27] ^= 0x01;
    snap::Deserializer d(std::move(image));
    try {
        d.beginSection("sec");
        FAIL() << "corrupt payload was accepted";
    } catch (const snap::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("CRC"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SnapshotFormat, TruncationDetected)
{
    snap::Serializer s;
    s.beginSection("sec");
    s.putU64(12345);
    s.endSection();
    std::vector<uint8_t> image = s.finish();
    image.resize(image.size() - 6);
    EXPECT_THROW(
        {
            snap::Deserializer d(std::move(image));
            d.beginSection("sec");
            d.getU64();
            d.endSection();
            d.finish();
        },
        snap::SnapshotError);
}

TEST(SnapshotFormat, VersionMismatchIsFatal)
{
    snap::Serializer s;
    s.beginSection("sec");
    s.endSection();
    std::vector<uint8_t> image = s.finish();
    image[8] ^= 0xFF; // formatVersion lives right after the magic
    try {
        snap::Deserializer d(std::move(image));
        FAIL() << "future-version snapshot was accepted";
    } catch (const snap::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SnapshotFormat, WrongSectionNameRejected)
{
    snap::Serializer s;
    s.beginSection("actual");
    s.endSection();
    snap::Deserializer d(s.finish());
    EXPECT_THROW(d.beginSection("expected"), snap::SnapshotError);
}

TEST(SnapshotFormat, LeftoverSectionBytesRejected)
{
    // A reader consuming fewer bytes than the writer produced is a
    // layout-skew bug; endSection must turn it into a diagnosis.
    snap::Serializer s;
    s.beginSection("sec");
    s.putU64(1);
    s.putU64(2);
    s.endSection();
    snap::Deserializer d(s.finish());
    d.beginSection("sec");
    EXPECT_EQ(d.getU64(), 1u);
    EXPECT_THROW(d.endSection(), snap::SnapshotError);
}

TEST(SnapshotFormat, FingerprintMismatchNamesField)
{
    snap::Serializer s;
    s.beginSection("cfg");
    s.putU32(8);
    s.endSection();
    snap::Deserializer d(s.finish());
    d.beginSection("cfg");
    try {
        d.expectU32(16, "cache ways");
        FAIL() << "config fingerprint mismatch was accepted";
    } catch (const snap::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("cache ways"),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------
// Whole-experiment byte-transparency.
// ---------------------------------------------------------------

TEST(ExperimentSnapshot, ChunkedRunMatchesOneShot)
{
    WorkloadProfile prof = allProfiles()[0];
    SimConfig sim;
    sim.seed = prof.seed;
    Experiment one(prof, 60'000, sim, poolVms());
    one.runChunk();

    Experiment chunked(prof, 60'000, sim, poolVms());
    // A deliberately awkward chunk size: boundaries land anywhere.
    while (!chunked.runChunk(777)) {
    }
    EXPECT_EQ(machineBytes(one), machineBytes(chunked));
}

TEST(ExperimentSnapshot, RestoreRunToEndIsByteIdentical)
{
    WorkloadProfile prof = allProfiles()[1];
    SimConfig sim;
    sim.seed = prof.seed;
    const uint64_t budget = 80'000;

    Experiment uninterrupted(prof, budget, sim, poolVms());
    uninterrupted.runChunk();

    // Checkpoint at a pseudo-random mid-run cycle...
    Experiment first(prof, budget, sim, poolVms());
    first.runChunk(31'337);
    ASSERT_FALSE(first.done());
    snap::Serializer s;
    first.save(s);
    std::vector<uint8_t> ckpt = s.finish();

    // ...restore into a *fresh* machine and run to the end.
    Experiment second(prof, budget, sim, poolVms());
    snap::Deserializer d(ckpt);
    second.restore(d);
    d.finish();
    EXPECT_EQ(second.cycle(), first.cycle());
    second.runChunk();

    EXPECT_EQ(machineBytes(uninterrupted), machineBytes(second));
    EXPECT_EQ(resultBytes(uninterrupted.takeResult()),
              resultBytes(second.takeResult()));
}

TEST(ExperimentSnapshot, SaveRestoreSaveReproducesTheImage)
{
    WorkloadProfile prof = allProfiles()[2];
    SimConfig sim;
    sim.seed = prof.seed;
    Experiment a(prof, 50'000, sim, poolVms());
    a.runChunk(20'000);
    std::vector<uint8_t> image = machineBytes(a);

    Experiment b(prof, 50'000, sim, poolVms());
    snap::Deserializer d(image);
    b.restore(d);
    d.finish();
    EXPECT_EQ(machineBytes(b), image);
}

TEST(ExperimentSnapshot, CheckpointAcrossScheduledFaultDelivery)
{
    // Scheduled parity faults straddle the checkpoint: one delivered
    // before it, one pending after it.  The restored machine must
    // replay the pending injection and its machine-check delivery
    // exactly, so the faulted run stays byte-identical.
    WorkloadProfile prof = allProfiles()[0];
    SimConfig sim;
    sim.seed = prof.seed;
    sim.mem.faults.parityCycles = {10'000, 40'000};
    const uint64_t budget = 70'000;

    Experiment uninterrupted(prof, budget, sim, poolVms());
    uninterrupted.runChunk();
    ExperimentResult clean = uninterrupted.takeResult();
    ASSERT_GE(clean.hw.faults.parityErrors, 2u);
    ASSERT_GE(clean.hw.faults.machineChecks, 1u);

    Experiment first(prof, budget, sim, poolVms());
    first.runChunk(25'000); // between the two scheduled faults
    snap::Serializer s;
    first.save(s);
    std::vector<uint8_t> ckpt = s.finish();

    Experiment second(prof, budget, sim, poolVms());
    snap::Deserializer d(ckpt);
    second.restore(d);
    d.finish();
    second.runChunk();
    EXPECT_EQ(resultBytes(clean), resultBytes(second.takeResult()));
}

TEST(ExperimentSnapshot, WrongWorkloadRejected)
{
    SimConfig sim0, sim1;
    sim0.seed = allProfiles()[0].seed;
    sim1.seed = allProfiles()[1].seed;
    Experiment a(allProfiles()[0], 20'000, sim0, poolVms());
    a.runChunk(5'000);
    snap::Serializer s;
    a.save(s);
    Experiment b(allProfiles()[1], 20'000, sim1, poolVms());
    snap::Deserializer d(s.finish());
    EXPECT_THROW(b.restore(d), snap::SnapshotError);
}

TEST(ExperimentSnapshot, FaultInjectorPresenceIsAFingerprint)
{
    WorkloadProfile prof = allProfiles()[0];
    SimConfig with = SimConfig{};
    with.seed = prof.seed;
    with.mem.faults.cacheParityRate = 1e-4;
    SimConfig without = SimConfig{};
    without.seed = prof.seed;

    Experiment a(prof, 20'000, with, poolVms());
    a.runChunk(5'000);
    snap::Serializer s;
    a.save(s);
    Experiment b(prof, 20'000, without, poolVms());
    snap::Deserializer d(s.finish());
    EXPECT_THROW(b.restore(d), snap::SnapshotError);
}

// ---------------------------------------------------------------
// Pool-level checkpointed recovery.
// ---------------------------------------------------------------

TEST(CheckpointRecovery, DrillRetryResumesFromCheckpoint)
{
    CheckpointConfig ck;
    ck.dir = scratchDir("drill");
    ck.intervalCycles = 20'000;

    SimJob job = SimJob::forProfile(allProfiles()[0], 90'000);
    SimJob drilled = job;
    drilled.limits.tripCycle = 50'000;

    SimPool pool(1);
    std::vector<ExperimentResult> clean = pool.run({job});
    ASSERT_FALSE(clean[0].failed);

    pool.setCheckpoint(ck);
    std::vector<ExperimentResult> recovered = pool.run({drilled});
    ASSERT_FALSE(recovered[0].failed);
    EXPECT_EQ(recovered[0].retries, 1u);
    // The kept attempt restarted from a checkpoint past cycle 0 but
    // before the drill tripped.
    EXPECT_GT(recovered[0].resumeCycle, 0u);
    EXPECT_LT(recovered[0].resumeCycle, 50'000u);
    EXPECT_GE(recovered[0].retryWallSeconds, 0.0);
    // Recovery must not change the measurement.
    EXPECT_EQ(resultBytes(clean[0]), resultBytes(recovered[0]));
}

TEST(CheckpointRecovery, DrillWithoutCheckpointStaysFailed)
{
    // Replaying from the seed re-trips the drill: the job fails after
    // its one retry, exactly the pre-checkpoint behavior.
    SimJob drilled = SimJob::forProfile(allProfiles()[0], 90'000);
    drilled.limits.tripCycle = 50'000;
    SimPool pool(1);
    std::vector<ExperimentResult> r = pool.run({drilled});
    EXPECT_TRUE(r[0].failed);
    EXPECT_EQ(r[0].retries, 1u);
    EXPECT_NE(r[0].error.find("drill"), std::string::npos);
}

TEST(CheckpointRecovery, ResumeSkipsCompletedJobs)
{
    CheckpointConfig ck;
    ck.dir = scratchDir("resume_done");
    ck.intervalCycles = 20'000;

    std::vector<SimJob> jobs = {
        SimJob::forProfile(allProfiles()[0], 60'000),
        SimJob::forProfile(allProfiles()[1], 60'000),
    };
    SimPool pool(1);
    pool.setCheckpoint(ck);
    std::vector<ExperimentResult> first = pool.run(jobs);
    ASSERT_TRUE(fileExists(resultPath(ck, 0, jobs[0].profile.name)));
    ASSERT_TRUE(fileExists(resultPath(ck, 1, jobs[1].profile.name)));

    ck.resume = true;
    pool.setCheckpoint(ck);
    std::vector<ExperimentResult> again = pool.run(jobs);
    EXPECT_EQ(resultBytes(first[0]), resultBytes(again[0]));
    EXPECT_EQ(resultBytes(first[1]), resultBytes(again[1]));
}

TEST(CheckpointRecovery, ResumeContinuesFromMidRunCheckpoint)
{
    CheckpointConfig ck;
    ck.dir = scratchDir("resume_mid");
    ck.intervalCycles = 20'000;
    ensureCheckpointDir(ck);

    SimJob job = SimJob::forProfile(allProfiles()[2], 80'000);
    std::vector<SimJob> jobs = {job};

    // Simulate the killed run: a mid-run checkpoint under the name
    // the pool will look for, plus the manifest.
    writeManifest(ck, jobs);
    Experiment exp(job.profile, job.cycles, job.sim, job.vms,
                   job.limits);
    exp.runChunk(33'000);
    ASSERT_FALSE(exp.done());
    ASSERT_TRUE(exp.saveFile(
        checkpointPath(ck, 0, job.profile.name)));

    ck.resume = true;
    SimPool pool(1);
    pool.setCheckpoint(ck);
    std::vector<ExperimentResult> resumed = pool.run(jobs);
    ASSERT_FALSE(resumed[0].failed);
    EXPECT_EQ(resumed[0].resumeCycle, exp.cycle());

    SimPool plain(1);
    std::vector<ExperimentResult> clean = plain.run(jobs);
    EXPECT_EQ(resultBytes(clean[0]), resultBytes(resumed[0]));
}

TEST(CheckpointRecovery, CorruptCheckpointFallsBackToSeed)
{
    CheckpointConfig ck;
    ck.dir = scratchDir("corrupt");
    ck.intervalCycles = 20'000;
    ensureCheckpointDir(ck);

    SimJob job = SimJob::forProfile(allProfiles()[0], 60'000);
    std::vector<SimJob> jobs = {job};
    writeManifest(ck, jobs);
    std::string cpath = checkpointPath(ck, 0, job.profile.name);
    std::FILE *f = std::fopen(cpath.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a snapshot", f);
    std::fclose(f);

    ck.resume = true;
    SimPool pool(1);
    pool.setCheckpoint(ck);
    std::vector<ExperimentResult> r = pool.run(jobs);
    ASSERT_FALSE(r[0].failed);
    EXPECT_EQ(r[0].resumeCycle, 0u); // restarted from the seed

    SimPool plain(1);
    std::vector<ExperimentResult> clean = plain.run(jobs);
    EXPECT_EQ(resultBytes(clean[0]), resultBytes(r[0]));
}

TEST(CheckpointRecovery, ResumeAgainstDifferentCompositeIsFatal)
{
    CheckpointConfig ck;
    ck.dir = scratchDir("manifest");
    ck.intervalCycles = 20'000;

    std::vector<SimJob> jobs = {
        SimJob::forProfile(allProfiles()[0], 30'000)};
    SimPool pool(1);
    pool.setCheckpoint(ck);
    (void)pool.run(jobs);

    std::vector<SimJob> other = {
        SimJob::forProfile(allProfiles()[0], 40'000)};
    ck.resume = true;
    pool.setCheckpoint(ck);
    EXPECT_DEATH((void)pool.run(other), "cycle budget");
}

TEST(CheckpointRecovery, ResultFileRoundTrip)
{
    CheckpointConfig ck;
    ck.dir = scratchDir("resultfile");
    ensureCheckpointDir(ck);
    SimJob job = SimJob::forProfile(allProfiles()[3], 40'000);
    ExperimentResult r = runJob(job);
    r.retries = 1;
    r.resumeCycle = 12'345;
    std::string path = resultPath(ck, 0, job.profile.name);
    ASSERT_TRUE(writeResultFile(path, r));

    ExperimentResult back;
    ASSERT_TRUE(readResultFile(path, &back));
    EXPECT_EQ(back.name, r.name);
    EXPECT_EQ(back.retries, 1u);
    EXPECT_EQ(back.resumeCycle, 12'345u);
    EXPECT_EQ(resultBytes(back), resultBytes(r));

    ExperimentResult missing;
    EXPECT_FALSE(
        readResultFile(ck.dir + "/no-such.result", &missing));
}

// ---------------------------------------------------------------
// Graceful interrupt drain.
// ---------------------------------------------------------------

TEST(InterruptDrain, RequestedBeforeRunMarksEverythingInterrupted)
{
    interrupt::reset();
    interrupt::request();
    std::vector<SimJob> jobs = {
        SimJob::forProfile(allProfiles()[0], 30'000),
        SimJob::forProfile(allProfiles()[1], 30'000),
    };
    SimPool pool(2);
    std::vector<ExperimentResult> r = pool.run(jobs);
    interrupt::reset();
    ASSERT_EQ(r.size(), 2u);
    for (size_t i = 0; i < r.size(); ++i) {
        EXPECT_TRUE(r[i].interrupted);
        EXPECT_EQ(r[i].name, jobs[i].profile.name);
        EXPECT_FALSE(r[i].failed);
    }
    PoolTelemetry tele = computeTelemetry(r);
    EXPECT_EQ(tele.interruptedJobs, 2u);
    EXPECT_NE(tele.summary().find("INTERRUPTED"), std::string::npos);
}

TEST(InterruptDrain, InterruptedPartsStayOutOfTheComposite)
{
    interrupt::reset();
    CompositeResult comp;
    {
        interrupt::request();
        std::vector<SimJob> jobs = {
            SimJob::forProfile(allProfiles()[0], 30'000)};
        SimPool pool(1);
        comp = pool.runComposite(jobs);
        interrupt::reset();
    }
    ASSERT_EQ(comp.parts.size(), 1u);
    EXPECT_TRUE(comp.parts[0].interrupted);
    // Nothing merged: the composite counters stay zero.
    EXPECT_EQ(comp.hw.counters.cycles, 0u);
    EXPECT_EQ(comp.hw.counters.instructions, 0u);
}

TEST(InterruptDrain, DrainedRunResumesToTheIdenticalResult)
{
    interrupt::reset();
    CheckpointConfig ck;
    ck.dir = scratchDir("drain_resume");
    ck.intervalCycles = 10'000;

    std::vector<SimJob> jobs = {
        SimJob::forProfile(allProfiles()[0], 60'000),
        SimJob::forProfile(allProfiles()[1], 60'000),
    };

    // "Kill" the run before it starts job 1: the manifest and (for
    // this variant) zero checkpoints are on disk, exactly like a
    // drain that hit before any interval elapsed.
    interrupt::request();
    SimPool pool(1);
    pool.setCheckpoint(ck);
    std::vector<ExperimentResult> drained = pool.run(jobs);
    interrupt::reset();
    EXPECT_TRUE(drained[0].interrupted);

    ck.resume = true;
    pool.setCheckpoint(ck);
    std::vector<ExperimentResult> resumed = pool.run(jobs);
    ASSERT_FALSE(resumed[0].interrupted);
    ASSERT_FALSE(resumed[1].interrupted);

    SimPool plain(1);
    std::vector<ExperimentResult> clean = plain.run(jobs);
    EXPECT_EQ(resultBytes(clean[0]), resultBytes(resumed[0]));
    EXPECT_EQ(resultBytes(clean[1]), resultBytes(resumed[1]));
}

// ---------------------------------------------------------------
// Flag parsing (typo-fatal contract).
// ---------------------------------------------------------------

TEST(CheckpointFlags, ParseAndStrip)
{
    const char *argv_in[] = {"prog",
                             "--checkpoint-dir", "/tmp/ck",
                             "--checkpoint-interval=125000",
                             "--resume",
                             "positional", nullptr};
    int argc = 6;
    char *argv[7];
    for (int i = 0; i < argc; ++i)
        argv[i] = const_cast<char *>(argv_in[i]);
    argv[argc] = nullptr;

    CheckpointConfig ck = CheckpointConfig::parseFlags(&argc, argv);
    EXPECT_TRUE(ck.enabled());
    EXPECT_EQ(ck.dir, "/tmp/ck");
    EXPECT_EQ(ck.intervalCycles, 125'000u);
    EXPECT_TRUE(ck.resume);
    // Only the positional operand survives the strip.
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "positional");
}

TEST(CheckpointFlags, LimitsParseAndStrip)
{
    const char *argv_in[] = {"prog", "--watchdog-cycles", "100000",
                             "--job-timeout=2.5", nullptr};
    int argc = 4;
    char *argv[5];
    for (int i = 0; i < argc; ++i)
        argv[i] = const_cast<char *>(argv_in[i]);
    argv[argc] = nullptr;

    RunLimits limits = parseLimitsFlags(&argc, argv);
    EXPECT_EQ(limits.watchdogCycles, 100'000u);
    EXPECT_DOUBLE_EQ(limits.timeoutSeconds, 2.5);
    EXPECT_EQ(argc, 1);
}

TEST(CheckpointFlags, TyposAreFatal)
{
    auto parse = [](std::initializer_list<const char *> args) {
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>("prog"));
        for (const char *a : args)
            argv.push_back(const_cast<char *>(a));
        argv.push_back(nullptr);
        int argc = static_cast<int>(argv.size()) - 1;
        (void)CheckpointConfig::parseFlags(&argc, argv.data());
        (void)parseLimitsFlags(&argc, argv.data());
    };
    EXPECT_DEATH(parse({"--checkpoint-interval=bogus",
                        "--checkpoint-dir=/tmp/x"}),
                 "not a positive count");
    EXPECT_DEATH(parse({"--checkpoint-interval=0",
                        "--checkpoint-dir=/tmp/x"}),
                 "not a positive count");
    EXPECT_DEATH(parse({"--resume"}), "--checkpoint-dir");
    EXPECT_DEATH(parse({"--checkpoint-interval=1000"}),
                 "--checkpoint-dir");
    EXPECT_DEATH(parse({"--job-timeout=-3"}), "not a positive");
    EXPECT_DEATH(parse({"--watchdog-cycles"}), "requires a value");
}
